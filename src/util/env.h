#ifndef ODE_UTIL_ENV_H_
#define ODE_UTIL_ENV_H_

#include <cstdint>
#include <memory>
#include <string>

#include "util/slice.h"
#include "util/status.h"

namespace ode {

/// A random-access file handle (POSIX pread/pwrite). All storage-layer I/O
/// (database file, WAL) goes through this so tests can keep files small and
/// the engine has a single seam for I/O errors. The class is abstract so an
/// Env can interpose wrappers (fault injection, counting) on every syscall.
class File {
 public:
  explicit File(std::string path) : path_(std::move(path)) {}
  virtual ~File();

  File(const File&) = delete;
  File& operator=(const File&) = delete;

  /// Opens (creating if necessary) `path` for read/write via Env::Default().
  static Status Open(const std::string& path, std::unique_ptr<File>* out);
  /// Opens `path` read-only via Env::Default(); NotFound if missing.
  static Status OpenReadOnly(const std::string& path,
                             std::unique_ptr<File>* out);

  /// Reads exactly `n` bytes at `offset` into `scratch`. Returns IOError on a
  /// short read (reading past EOF is a short read).
  Status Read(uint64_t offset, size_t n, char* scratch) const;

  /// Reads up to `n` bytes; sets *bytes_read (can be < n at EOF).
  virtual Status ReadAtMost(uint64_t offset, size_t n, char* scratch,
                            size_t* bytes_read) const = 0;

  /// One scatter destination of a ReadBatch call: `n` bytes into `scratch`.
  struct ReadVec {
    char* scratch = nullptr;
    size_t n = 0;
  };

  /// Reads one contiguous file range starting at `offset` into the scattered
  /// buffers of `vecs` — a readv-style batch, so a cold sequential scan
  /// costs one large I/O instead of one 4 KiB pread per page. Sets
  /// *bytes_read to the total bytes delivered, which falls short of the
  /// summed vector sizes at EOF (tail buffers are left untouched). The base
  /// implementation loops ReadAtMost per vector; PosixFile overrides it
  /// with preadv.
  virtual Status ReadBatch(uint64_t offset, const ReadVec* vecs, size_t count,
                           size_t* bytes_read) const;

  /// Writes all of `data` at `offset`.
  virtual Status Write(uint64_t offset, const Slice& data) = 0;

  /// Appends `data` at end of file.
  Status Append(const Slice& data);

  /// Flushes file contents (and metadata) to stable storage.
  virtual Status Sync() = 0;

  /// Truncates to `size` bytes.
  virtual Status Truncate(uint64_t size) = 0;

  virtual Result<uint64_t> Size() const = 0;

  const std::string& path() const { return path_; }

 protected:
  std::string path_;
};

/// The I/O environment: how the storage stack opens files. The default is
/// plain POSIX; tests substitute a FaultInjectionEnv to provoke failures at
/// exact syscall sites. Pager::Open, Wal::Open and StorageEngine::Open all
/// accept an Env*.
class Env {
 public:
  virtual ~Env() = default;

  /// Opens (creating if necessary) `path` for read/write.
  virtual Status NewFile(const std::string& path,
                         std::unique_ptr<File>* out) = 0;
  /// Opens `path` read-only; NotFound if missing.
  virtual Status NewReadOnlyFile(const std::string& path,
                                 std::unique_ptr<File>* out) = 0;

  /// The process-wide POSIX environment.
  static Env* Default();
};

/// An Env that deterministically injects I/O failures, for crash-consistency
/// tests. Every syscall made through files opened via this env is counted by
/// kind; a fault is armed to fire on the Nth matching operation (1-based,
/// counted since the last Reset), optionally restricted to files whose path
/// contains a substring (the "syscall site"), and optionally *tearing* a
/// write — persisting only a prefix of the data before reporting the error,
/// as a crash mid-`pwrite` would.
///
/// After the fault fires the env models a dead device: every subsequent
/// mutating operation (write/sync/truncate) fails until Disarm() or Reset().
/// Reads keep working so in-memory rollback paths can be exercised.
class FaultInjectionEnv : public Env {
 public:
  enum class OpKind : uint8_t { kRead, kWrite, kSync, kTruncate };

  struct FaultSpec {
    OpKind kind = OpKind::kWrite;
    /// Count writes, syncs and truncates on one shared counter — the
    /// "durability ops" a crash sweep steps through. Ignores `kind`.
    bool any_mutating = false;
    uint64_t nth = 0;  ///< Fire on the nth matching op (1-based); 0 = off.
    bool torn = false;  ///< Writes persist half the data before failing.
    /// Fail only the nth op itself; the device stays up afterwards (a
    /// transient error, not a crash). Default models a dead device.
    bool transient = false;
    std::string path_substring;  ///< Only ops on matching files count.
  };

  struct Counters {
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t syncs = 0;
    uint64_t truncates = 0;
    uint64_t mutating() const { return writes + syncs + truncates; }
  };

  explicit FaultInjectionEnv(Env* base = Env::Default()) : base_(base) {}

  Status NewFile(const std::string& path,
                 std::unique_ptr<File>* out) override;
  Status NewReadOnlyFile(const std::string& path,
                         std::unique_ptr<File>* out) override;

  /// Arms `spec`; an already-armed fault is replaced. `nth` counts matching
  /// ops from this call on. Global counters keep running.
  void ArmFault(const FaultSpec& spec) {
    spec_ = spec;
    fault_fired_ = false;
    down_ = false;
    matched_ = 0;
  }

  /// Convenience: fail the nth mutating op (write/sync/truncate) anywhere.
  void FailNthMutatingOp(uint64_t nth, bool torn = false) {
    FaultSpec spec;
    spec.any_mutating = true;
    spec.nth = nth;
    spec.torn = torn;
    ArmFault(spec);
  }

  /// Disarms the fault and brings the "device" back up. Counters keep their
  /// values; fault_fired() is preserved for inspection.
  void Disarm() {
    spec_ = FaultSpec();
    down_ = false;
  }

  /// Disarms and zeroes all counters (fresh deterministic run).
  void Reset() {
    Disarm();
    fault_fired_ = false;
    counters_ = Counters();
    matched_ = 0;
  }

  bool fault_fired() const { return fault_fired_; }
  const Counters& counters() const { return counters_; }

  /// Called by FaultInjectionFile before each syscall. Returns OK to let the
  /// op through; an IOError to inject a failure. For a torn write, sets
  /// *torn_prefix to the number of bytes to persist before failing
  /// (`write_size` is the op's full payload size).
  Status OnOp(OpKind kind, const std::string& path, size_t write_size,
              size_t* torn_prefix);

 private:
  Env* base_;
  FaultSpec spec_;
  Counters counters_;
  uint64_t matched_ = 0;   ///< Ops matching the armed spec so far.
  bool fault_fired_ = false;
  bool down_ = false;      ///< Device dead: all mutating ops fail.
};

/// File wrapper that routes every syscall through FaultInjectionEnv::OnOp.
class FaultInjectionFile : public File {
 public:
  FaultInjectionFile(std::unique_ptr<File> base, FaultInjectionEnv* env)
      : File(base->path()), base_(std::move(base)), env_(env) {}

  Status ReadAtMost(uint64_t offset, size_t n, char* scratch,
                    size_t* bytes_read) const override;
  Status ReadBatch(uint64_t offset, const ReadVec* vecs, size_t count,
                   size_t* bytes_read) const override;
  Status Write(uint64_t offset, const Slice& data) override;
  Status Sync() override;
  Status Truncate(uint64_t size) override;
  Result<uint64_t> Size() const override;

 private:
  std::unique_ptr<File> base_;
  FaultInjectionEnv* env_;
};

/// Filesystem helpers.
namespace env {

bool FileExists(const std::string& path);
Status RemoveFile(const std::string& path);
Status RenameFile(const std::string& from, const std::string& to);
Status CreateDir(const std::string& path);           ///< OK if already exists.
Status RemoveDirRecursively(const std::string& path);
/// Byte-for-byte copy of `from` into `to` (created/overwritten), synced.
Status CopyFile(const std::string& from, const std::string& to);

}  // namespace env
}  // namespace ode

#endif  // ODE_UTIL_ENV_H_
