#ifndef ODE_UTIL_ENV_H_
#define ODE_UTIL_ENV_H_

#include <cstdint>
#include <memory>
#include <string>

#include "util/slice.h"
#include "util/status.h"

namespace ode {

/// A random-access file handle (POSIX pread/pwrite). All storage-layer I/O
/// (database file, WAL) goes through this so tests can keep files small and
/// the engine has a single seam for I/O errors.
class File {
 public:
  ~File();

  File(const File&) = delete;
  File& operator=(const File&) = delete;

  /// Opens (creating if necessary) `path` for read/write.
  static Status Open(const std::string& path, std::unique_ptr<File>* out);
  /// Opens `path` read-only; NotFound if missing.
  static Status OpenReadOnly(const std::string& path,
                             std::unique_ptr<File>* out);

  /// Reads exactly `n` bytes at `offset` into `scratch`. Returns IOError on a
  /// short read (reading past EOF is a short read).
  Status Read(uint64_t offset, size_t n, char* scratch) const;

  /// Reads up to `n` bytes; sets *bytes_read (can be < n at EOF).
  Status ReadAtMost(uint64_t offset, size_t n, char* scratch,
                    size_t* bytes_read) const;

  /// Writes all of `data` at `offset`.
  Status Write(uint64_t offset, const Slice& data);

  /// Appends `data` at end of file.
  Status Append(const Slice& data);

  /// Flushes file contents (and metadata) to stable storage.
  Status Sync();

  /// Truncates to `size` bytes.
  Status Truncate(uint64_t size);

  Result<uint64_t> Size() const;

  const std::string& path() const { return path_; }

 private:
  File(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_;
  std::string path_;
};

/// Filesystem helpers.
namespace env {

bool FileExists(const std::string& path);
Status RemoveFile(const std::string& path);
Status RenameFile(const std::string& from, const std::string& to);
Status CreateDir(const std::string& path);           ///< OK if already exists.
Status RemoveDirRecursively(const std::string& path);

}  // namespace env
}  // namespace ode

#endif  // ODE_UTIL_ENV_H_
