#ifndef ODE_UTIL_CRC32C_H_
#define ODE_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace ode {
namespace crc32c {

/// Returns the CRC32C (Castagnoli) of data[0..n-1], extending `init_crc`
/// (pass 0 for a fresh checksum). Software table-driven implementation.
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

/// Masked CRCs are stored in files so that a CRC of data that happens to
/// contain embedded CRCs does not collide trivially (same trick as LevelDB).
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

inline uint32_t Unmask(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace crc32c
}  // namespace ode

#endif  // ODE_UTIL_CRC32C_H_
