#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace ode {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel()) {
    std::string msg = stream_.str();
    fprintf(stderr, "%s\n", msg.c_str());
  }
}

}  // namespace internal_logging
}  // namespace ode
