#ifndef ODE_UTIL_CODING_H_
#define ODE_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "util/slice.h"

namespace ode {

// Little-endian fixed-width and varint integer codings used by the storage
// layer, WAL records and serialization archives.

inline void EncodeFixed16(char* dst, uint16_t value) {
  memcpy(dst, &value, sizeof(value));  // Little-endian hosts only.
}
inline void EncodeFixed32(char* dst, uint32_t value) {
  memcpy(dst, &value, sizeof(value));
}
inline void EncodeFixed64(char* dst, uint64_t value) {
  memcpy(dst, &value, sizeof(value));
}

inline uint16_t DecodeFixed16(const char* src) {
  uint16_t v;
  memcpy(&v, src, sizeof(v));
  return v;
}
inline uint32_t DecodeFixed32(const char* src) {
  uint32_t v;
  memcpy(&v, src, sizeof(v));
  return v;
}
inline uint64_t DecodeFixed64(const char* src) {
  uint64_t v;
  memcpy(&v, src, sizeof(v));
  return v;
}

void PutFixed16(std::string* dst, uint16_t value);
void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);

/// Appends a base-128 varint encoding of `value` (1..5 bytes).
void PutVarint32(std::string* dst, uint32_t value);
/// Appends a base-128 varint encoding of `value` (1..10 bytes).
void PutVarint64(std::string* dst, uint64_t value);
/// Appends varint length followed by the bytes of `value`.
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);

/// Parses a varint32 from the front of `*input`, advancing it.
/// Returns false on malformed/truncated input.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

bool GetFixed16(Slice* input, uint16_t* value);
bool GetFixed32(Slice* input, uint32_t* value);
bool GetFixed64(Slice* input, uint64_t* value);

/// Number of bytes PutVarint64 would append.
int VarintLength(uint64_t value);

/// Encodes a signed integer as zig-zag so small magnitudes stay small.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace ode

#endif  // ODE_UTIL_CODING_H_
