#ifndef ODE_UTIL_RANDOM_H_
#define ODE_UTIL_RANDOM_H_

#include <cstdint>
#include <string>

namespace ode {

/// Small, fast, deterministic PRNG (xorshift128+) for tests, workload
/// generators and benchmarks. Not cryptographic.
class Random {
 public:
  explicit Random(uint64_t seed) {
    s0_ = seed ? seed : 0x9E3779B97F4A7C15ull;
    s1_ = s0_ ^ 0xBF58476D1CE4E5B9ull;
    // Warm up so nearby seeds diverge.
    for (int i = 0; i < 8; i++) Next();
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi]. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// True with probability p/100.
  bool PercentTrue(int p) { return static_cast<int>(Uniform(100)) < p; }

  double NextDouble() {  // in [0,1)
    return static_cast<double>(Next() >> 11) / 9007199254740992.0;
  }

  /// Random lowercase ASCII string of length n.
  std::string NextString(size_t n) {
    std::string s(n, 'a');
    for (size_t i = 0; i < n; i++) {
      s[i] = static_cast<char>('a' + Uniform(26));
    }
    return s;
  }

 private:
  uint64_t s0_, s1_;
};

}  // namespace ode

#endif  // ODE_UTIL_RANDOM_H_
