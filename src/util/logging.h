#ifndef ODE_UTIL_LOGGING_H_
#define ODE_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace ode {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Minimum level actually emitted; defaults to kWarn so library users are
/// not spammed. Tests and tools may lower it.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink; emits to stderr on destruction if enabled.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace ode

#define ODE_LOG(level)                                                  \
  ::ode::internal_logging::LogMessage(::ode::LogLevel::level, __FILE__, \
                                      __LINE__)                         \
      .stream()

#endif  // ODE_UTIL_LOGGING_H_
