#include "util/status.h"

#include "util/metrics.h"

namespace ode {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kIOError:
      return "IOError";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kConstraintViolation:
      return "ConstraintViolation";
    case Status::Code::kTransactionAborted:
      return "TransactionAborted";
    case Status::Code::kBusy:
      return "Busy";
    case Status::Code::kDeadlock:
      return "Deadlock";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

void IgnoreStatus(const Status& s, const char* reason) {
  if (s.ok()) return;  // dropping an OK status costs nothing and means nothing
  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.GetCounter("status.ignored")->Add();
  metrics.GetCounter(std::string("status.ignored.") + reason)->Add();
}

}  // namespace ode
