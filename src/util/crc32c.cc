#include "util/crc32c.h"

namespace ode {
namespace crc32c {

namespace {

// Table for CRC32C (polynomial 0x1EDC6F41, reflected 0x82F63B78),
// generated lazily at first use.
struct Table {
  uint32_t entries[256];
  Table() {
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t crc = i;
      for (int j = 0; j < 8; j++) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0);
      }
      entries[i] = crc;
    }
  }
};

const Table& GetTable() {
  static const Table* table = new Table();
  return *table;
}

}  // namespace

uint32_t Extend(uint32_t init_crc, const char* data, size_t n) {
  const Table& table = GetTable();
  uint32_t crc = init_crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; i++) {
    crc = table.entries[(crc ^ static_cast<unsigned char>(data[i])) & 0xFF] ^
          (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace crc32c
}  // namespace ode
