#ifndef ODE_UTIL_THREAD_ANNOTATIONS_H_
#define ODE_UTIL_THREAD_ANNOTATIONS_H_

/// Clang thread-safety annotations (LevelDB/Abseil style), compiled away on
/// toolchains without the `capability` attribute family. Annotating a member
/// `GUARDED_BY(mu_)` or a function `REQUIRES(mu_)` turns the engine's lock
/// protocol into compiler-checked fact under `clang -Wthread-safety`
/// (the CI static-analysis job builds with -Werror=thread-safety).
///
/// The annotations only work on lock types that are themselves annotated as
/// capabilities — use ode::Mutex / ode::MutexLock / ode::CondVar from
/// util/mutex.h, not raw std::mutex (libstdc++'s primitives carry no
/// annotations, so the analysis cannot see through them).
///
/// Conventions and a reading guide live in docs/STATIC_ANALYSIS.md.

#if defined(__clang__) && (!defined(SWIG))
#define ODE_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define ODE_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op
#endif

/// Declares a class to be a lockable capability (e.g. a mutex).
#define CAPABILITY(x) ODE_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

/// Declares an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define SCOPED_CAPABILITY ODE_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

/// The annotated member may only be accessed while holding `x`.
#define GUARDED_BY(x) ODE_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

/// The data pointed to by the annotated pointer member may only be accessed
/// while holding `x` (the pointer itself is unguarded).
#define PT_GUARDED_BY(x) ODE_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

/// The annotated function may only be called while holding the listed
/// capabilities exclusively; it does not change what is held.
#define REQUIRES(...) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

/// Shared-hold variant of REQUIRES.
#define REQUIRES_SHARED(...) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

/// The annotated function acquires the listed capabilities and holds them on
/// return (e.g. Mutex::Lock).
#define ACQUIRE(...) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))

/// The annotated function releases the listed capabilities (e.g.
/// Mutex::Unlock); callers must hold them on entry.
#define RELEASE(...) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))

/// The annotated function may not be called while holding the listed
/// capabilities (it acquires them itself; prevents self-deadlock).
#define EXCLUDES(...) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// Try-lock: acquires the capability only when returning `ret`.
#define TRY_ACQUIRE(ret, ...) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(ret, __VA_ARGS__))

/// Runtime assertion that the calling thread holds the capability; tells the
/// analysis to assume it from here on.
#define ASSERT_CAPABILITY(x) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))

/// The annotated function returns a reference to the listed capability
/// (lets the analysis resolve accessor-returned locks).
#define RETURN_CAPABILITY(x) ODE_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

/// Escape hatch: the function's locking is beyond the analysis (see the
/// suppression policy in docs/STATIC_ANALYSIS.md — every use needs a comment
/// saying why).
#define NO_THREAD_SAFETY_ANALYSIS \
  ODE_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

#endif  // ODE_UTIL_THREAD_ANNOTATIONS_H_
