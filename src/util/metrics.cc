#include "util/metrics.h"

#include <cstdio>

namespace ode {

namespace {

/// Minimal JSON string escaping for metric names (which are plain dotted
/// identifiers in practice, but render defensively).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         size_t max_samples) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(max_samples);
  return slot.get();
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  MutexLock lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    Snapshot::HistogramRow row;
    row.name = name;
    row.count = h->count();
    row.mean = h->mean();
    row.p50 = h->Percentile(50);
    row.p95 = h->Percentile(95);
    row.p99 = h->Percentile(99);
    row.min = h->min();
    row.max = h->max();
    snap.histograms.push_back(std::move(row));
  }
  return snap;  // maps iterate sorted, so every section is name-ordered
}

void MetricsRegistry::Reset() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Clear();
}

uint64_t MetricsRegistry::Snapshot::counter(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

int64_t MetricsRegistry::Snapshot::gauge(const std::string& name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0;
}

std::string MetricsRegistry::Snapshot::RenderText() const {
  size_t width = 0;
  for (const auto& [name, v] : counters) width = std::max(width, name.size());
  for (const auto& [name, v] : gauges) width = std::max(width, name.size());
  for (const auto& row : histograms) width = std::max(width, row.name.size());

  std::string out;
  char buf[256];
  for (const auto& [name, v] : counters) {
    snprintf(buf, sizeof(buf), "%-*s %llu\n", static_cast<int>(width),
             name.c_str(), static_cast<unsigned long long>(v));
    out += buf;
  }
  for (const auto& [name, v] : gauges) {
    snprintf(buf, sizeof(buf), "%-*s %lld\n", static_cast<int>(width),
             name.c_str(), static_cast<long long>(v));
    out += buf;
  }
  for (const auto& row : histograms) {
    snprintf(buf, sizeof(buf),
             "%-*s n=%llu mean=%.1f p50=%.1f p95=%.1f p99=%.1f max=%.1f\n",
             static_cast<int>(width), row.name.c_str(),
             static_cast<unsigned long long>(row.count), row.mean, row.p50,
             row.p95, row.p99, row.max);
    out += buf;
  }
  return out;
}

std::string MetricsRegistry::Snapshot::RenderJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& row : histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(row.name) + "\":{\"count\":" +
           std::to_string(row.count) + ",\"mean\":" + JsonNumber(row.mean) +
           ",\"p50\":" + JsonNumber(row.p50) + ",\"p95\":" +
           JsonNumber(row.p95) + ",\"p99\":" + JsonNumber(row.p99) +
           ",\"min\":" + JsonNumber(row.min) + ",\"max\":" +
           JsonNumber(row.max) + "}";
  }
  out += "}}";
  return out;
}

}  // namespace ode
