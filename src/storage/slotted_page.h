#ifndef ODE_STORAGE_SLOTTED_PAGE_H_
#define ODE_STORAGE_SLOTTED_PAGE_H_

#include <cstdint>

#include "storage/page.h"
#include "util/slice.h"

namespace ode {

/// Variable-length record management within one kPageSize buffer.
///
/// Layout:
///   [0]      page type (PageType)
///   [1]      reserved
///   [2..3]   slot count (u16)
///   [4..5]   heap end (u16) — first free byte above the record heap
///   [6..7]   extra-header size (u16)
///   [8..]    caller "extra" header region, then the record heap growing up
///   [end]    slot directory growing down: per slot {offset u16, length u16};
///            offset 0 marks a free (deleted) slot.
///
/// All functions are static and operate on a raw page buffer, which is how
/// the buffer pool hands out pages. Record offsets are never 0 because the
/// heap starts at or above byte 8.
class SlottedPage {
 public:
  /// Largest record an empty page (with `extra` header bytes) can hold.
  static uint16_t MaxRecordSize(uint16_t extra);

  /// Formats `page` as an empty slotted page of the given type.
  static void Init(char* page, PageType type, uint16_t extra);

  static PageType Type(const char* page);
  static uint16_t SlotCount(const char* page);

  /// Caller-owned extra header region (size fixed at Init).
  static char* Extra(char* page);
  static const char* Extra(const char* page);

  /// Inserts `record`, compacting if fragmentation blocks an otherwise-fitting
  /// insert. Returns false if there is genuinely not enough space.
  static bool Insert(char* page, const Slice& record, uint16_t* slot);

  /// Reads the record in `slot`. Returns false for out-of-range or deleted
  /// slots.
  static bool Read(const char* page, uint16_t slot, Slice* record);

  /// Replaces the record in `slot`. In place when the new record is no
  /// larger; otherwise re-allocates within the page (possibly compacting).
  /// Returns false if it cannot fit.
  static bool Update(char* page, uint16_t slot, const Slice& record);

  /// Deletes the record in `slot` (slot index becomes reusable).
  static bool Delete(char* page, uint16_t slot);

  /// Bytes available for one new record (accounts for a new slot entry).
  static uint16_t FreeSpace(const char* page);

  /// Space used by live records (diagnostics).
  static uint32_t LiveBytes(const char* page);

  /// Rewrites the heap to squeeze out holes left by deletes/updates.
  static void Compact(char* page);

 private:
  static constexpr uint16_t kHeaderSize = 8;
  static constexpr uint16_t kSlotSize = 4;
};

}  // namespace ode

#endif  // ODE_STORAGE_SLOTTED_PAGE_H_
