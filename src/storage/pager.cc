#include "storage/pager.h"

#include <cstring>
#include <vector>

#include "util/coding.h"

namespace ode {

Pager::Pager(std::unique_ptr<File> file, std::string path,
             MetricsRegistry* metrics)
    : file_(std::move(file)), path_(std::move(path)) {
  MetricsRegistry& m = metrics != nullptr ? *metrics : MetricsRegistry::Global();
  reads_ = m.GetCounter("storage.pager.reads");
  writes_ = m.GetCounter("storage.pager.writes");
  syncs_ = m.GetCounter("storage.pager.syncs");
  batch_reads_ = m.GetCounter("storage.readbatch.batches");
  batch_pages_ = m.GetCounter("storage.readbatch.pages");
}

Status Pager::Open(Env* env, const std::string& path,
                   std::unique_ptr<Pager>* out, bool* created,
                   MetricsRegistry* metrics) {
  std::unique_ptr<File> file;
  ODE_RETURN_IF_ERROR(env->NewFile(path, &file));
  ODE_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  std::unique_ptr<Pager> pager(new Pager(std::move(file), path, metrics));
  *created = (size == 0);
  if (*created) {
    // Format a fresh superblock: 1 page in the file, empty free list, no
    // catalog yet.
    char page[kPageSize];
    memset(page, 0, sizeof(page));
    memcpy(page + SuperblockLayout::kMagicOffset, kSuperblockMagic, 8);
    EncodeFixed32(page + SuperblockLayout::kVersionOffset, kFormatVersion);
    EncodeFixed32(page + SuperblockLayout::kPageCountOffset, 1);
    EncodeFixed32(page + SuperblockLayout::kFreeListOffset, kInvalidPageId);
    EncodeFixed32(page + SuperblockLayout::kCatalogRootOffset, kInvalidPageId);
    EncodeFixed64(page + SuperblockLayout::kNextTxnIdOffset, 1);
    EncodeFixed64(page + SuperblockLayout::kNextTriggerIdOffset, 1);
    ODE_RETURN_IF_ERROR(pager->WritePage(kSuperblockPageId, page));
    ODE_RETURN_IF_ERROR(pager->Sync());
  } else {
    // Validate the superblock of an existing file.
    char page[kPageSize];
    ODE_RETURN_IF_ERROR(pager->ReadPage(kSuperblockPageId, page));
    if (memcmp(page + SuperblockLayout::kMagicOffset, kSuperblockMagic, 8) !=
        0) {
      return Status::Corruption("bad database magic in " + path);
    }
    const uint32_t version =
        DecodeFixed32(page + SuperblockLayout::kVersionOffset);
    if (version != kFormatVersion) {
      return Status::NotSupported("database format version " +
                                  std::to_string(version));
    }
  }
  *out = std::move(pager);
  return Status::OK();
}

Status Pager::ReadPage(PageId id, char* buf) const {
  reads_->Add();
  const uint64_t offset = static_cast<uint64_t>(id) * kPageSize;
  size_t bytes_read = 0;
  ODE_RETURN_IF_ERROR(file_->ReadAtMost(offset, kPageSize, buf, &bytes_read));
  if (bytes_read < kPageSize) {
    // Logically-allocated page that was never flushed: reads as zeroes.
    memset(buf + bytes_read, 0, kPageSize - bytes_read);
  }
  return Status::OK();
}

Status Pager::ReadPages(PageId first, uint32_t count, char* const* bufs) const {
  if (count == 0) return Status::OK();
  reads_->Add(count);
  batch_reads_->Add();
  batch_pages_->Add(count);
  std::vector<File::ReadVec> vecs(count);
  for (uint32_t i = 0; i < count; i++) {
    vecs[i].scratch = bufs[i];
    vecs[i].n = kPageSize;
  }
  const uint64_t offset = static_cast<uint64_t>(first) * kPageSize;
  size_t got = 0;
  ODE_RETURN_IF_ERROR(file_->ReadBatch(offset, vecs.data(), count, &got));
  // Zero-fill the tail past EOF (logically-allocated pages never flushed).
  for (uint32_t i = 0; i < count; i++) {
    const size_t page_start = static_cast<size_t>(i) * kPageSize;
    if (got >= page_start + kPageSize) continue;
    const size_t filled = got > page_start ? got - page_start : 0;
    memset(bufs[i] + filled, 0, kPageSize - filled);
  }
  return Status::OK();
}

Status Pager::WritePage(PageId id, const char* buf) {
  writes_->Add();
  const uint64_t offset = static_cast<uint64_t>(id) * kPageSize;
  return file_->Write(offset, Slice(buf, kPageSize));
}

Status Pager::Sync() {
  syncs_->Add();
  return file_->Sync();
}

Status Pager::TruncateToPages(uint32_t page_count) {
  return file_->Truncate(static_cast<uint64_t>(page_count) * kPageSize);
}

}  // namespace ode
