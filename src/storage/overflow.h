#ifndef ODE_STORAGE_OVERFLOW_H_
#define ODE_STORAGE_OVERFLOW_H_

#include <string>
#include <vector>

#include "storage/engine.h"
#include "util/slice.h"
#include "util/status.h"

namespace ode {
namespace overflow {

/// Payload bytes stored per overflow page (after the 12-byte header:
/// type u8 + pad + next u32 + len u32).
inline constexpr uint32_t kOverflowPayload = kPageSize - 12;

/// Writes `data` into a fresh chain of overflow pages (inside the active
/// transaction) and returns the first page id.
Status WriteChain(StorageEngine* engine, const Slice& data, PageId* first);

/// Reads an entire chain back into `*out`.
Status ReadChain(StorageEngine* engine, PageId first, std::string* out);

/// Frees all pages of the chain starting at `first`.
Status FreeChain(StorageEngine* engine, PageId first);

/// Collects the page ids of a chain (integrity checking).
Status ListChainPages(StorageEngine* engine, PageId first,
                      std::vector<PageId>* pages);

}  // namespace overflow
}  // namespace ode

#endif  // ODE_STORAGE_OVERFLOW_H_
