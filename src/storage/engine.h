#ifndef ODE_STORAGE_ENGINE_H_
#define ODE_STORAGE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "concur/lock_manager.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/pager.h"
#include "storage/wal.h"
#include "util/mutex.h"
#include "util/status.h"

namespace ode {

/// Tuning knobs for the storage engine.
struct EngineOptions {
  size_t buffer_pool_pages = 1024;  ///< 4 MiB of cache by default.
  /// Buffer-pool shard count (docs/CONCURRENCY.md "Buffer-pool sharding"):
  /// rounded down to a power of two and clamped to [1, min(64, pool pages)].
  /// Each shard has its own mutex + LRU slice, so concurrent readers of
  /// unrelated pages do not contend. 8 covers typical core counts; raise it
  /// only if storage.pool contention shows up in profiles.
  size_t buffer_pool_shards = 8;
  Wal::SyncMode wal_sync = Wal::SyncMode::kSyncEveryCommit;
  /// Group-commit batching window (docs/STORAGE.md "Group commit"), in
  /// microseconds. After a committing session publishes its log records it
  /// may become the batch leader; a non-zero window makes the leader wait
  /// this long for more sessions to publish before issuing the one shared
  /// fsync. 0 never delays — the leader fsyncs immediately, still covering
  /// whatever queued while a previous fsync was in flight.
  uint64_t group_commit_window_us = 0;
  /// Checkpoint (flush pages + truncate log) once the WAL exceeds this size.
  uint64_t checkpoint_wal_bytes = 8ull << 20;
  /// Run the threshold checkpoint fuzzily on a background thread
  /// (docs/STORAGE.md "Fuzzy checkpoints"): dirty pages are written behind
  /// while commits proceed, then a short critical section under the log
  /// latch resets the horizon and truncates the WAL — commits never pay for
  /// the checkpoint inline, so p99 commit latency stays flat. Off by
  /// default: the legacy inline checkpoint (at commit, engine idle) keeps
  /// fault-injection op counts deterministic for the crash sweeps; servers
  /// and benches turn this on.
  bool background_checkpoint = false;
  /// Shared query worker pool size for parallel ForAll execution
  /// (docs/CONCURRENCY.md "Parallel query execution"). The engine itself
  /// does not spawn these threads — Database sizes its QueryPool from this.
  /// 0 disables intra-query parallelism (ForAll::Parallel() falls back to
  /// the serial path).
  size_t query_threads = 4;
  /// Lock-manager wait bound before a blocked acquisition gives up with
  /// Status::Busy (deadlocks are detected and reported much sooner; this is
  /// the safety net). 0 means wait forever.
  uint64_t lock_wait_timeout_ms = 10000;
  /// I/O environment for the database file and WAL; nullptr means
  /// Env::Default(). Tests inject a FaultInjectionEnv here.
  Env* env = nullptr;
  /// Metrics registry receiving the engine's `storage.*` instrument updates
  /// (and, through Database, the `txn.*` / `query.*` ones); nullptr means
  /// MetricsRegistry::Global(). Tests that assert exact counts pass their
  /// own registry here.
  MetricsRegistry* metrics = nullptr;
};

/// The transactional page store: pager + buffer pool + redo WAL + recovery,
/// shared by concurrent sessions.
///
/// Transaction model (docs/CONCURRENCY.md): any number of transactions may
/// be active at once, each bound to the thread that began it (thread-affine).
/// The buffer pool holds ONLY committed page images; a transaction's page
/// writes go to private shadow copies invisible to everyone else. The first
/// page write acquires the single global writer token (exclusively, through
/// the lock manager, so token waits participate in deadlock detection) and
/// holds it until the commit is published — writers serialize, readers run
/// concurrently against committed state. Commit appends the shadow
/// after-images plus a commit record to the WAL under a short log latch (the
/// serialization point), hands the writer token to the next writer, and then
/// waits for durability: a batch leader issues one Wal::Sync() on behalf of
/// every session that published since the last fsync (group commit — see
/// docs/STORAGE.md). Only after the shared fsync succeeds are the images
/// published into the pool; abort just drops the shadows. Opening a database
/// replays committed transactions from the log (crash recovery).
class StorageEngine {
 public:
  /// All fields are atomics: sessions commit/abort concurrently. Loads
  /// convert implicitly, so `stats().txns_committed == 3u` reads naturally.
  struct Stats {
    std::atomic<uint64_t> txns_committed{0};
    std::atomic<uint64_t> txns_aborted{0};
    std::atomic<uint64_t> pages_allocated{0};
    std::atomic<uint64_t> pages_freed{0};
    std::atomic<uint64_t> checkpoints{0};
    std::atomic<uint64_t> commit_failures{0};  ///< Commits degraded to aborts
                                               ///< by I/O errors.
  };

  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  /// Opens (creating if needed) the database at `path` (the WAL lives at
  /// `path` + ".wal"). Runs crash recovery if the log is non-empty.
  static Status Open(const std::string& path, const EngineOptions& options,
                     std::unique_ptr<StorageEngine>* out);

  /// Aborts any still-active transactions, checkpoints and closes. The
  /// destructor also checkpoints best-effort.
  Status Close();

  ~StorageEngine();

  // --- Transactions -------------------------------------------------------

  /// Starts a transaction bound to the calling thread. Fails with Busy if
  /// this thread already has one (or a vacuum is running elsewhere), with
  /// IOError if a previous commit failure wedged the engine (see CommitTxn).
  Result<TxnId> BeginTxn();

  /// Durably commits the calling thread's transaction. Under
  /// SyncMode::kSyncEveryCommit the commit is group-batched: the log records
  /// are appended under the log latch, the writer token is handed to the
  /// next writer, and the session blocks until a batch leader's shared
  /// fsync covers it (docs/STORAGE.md "Group commit"). If appending the page
  /// images or the commit record fails — or the batch fsync fails — the
  /// commit degrades to an abort: the unsynced log records are scrubbed, the
  /// page images are dropped, and the engine stays usable (the error is
  /// still returned; every session in a failed batch gets it). Only if the
  /// scrub itself also fails — the log may then still hold the dead
  /// transactions' records — does the engine wedge itself: further
  /// transactions are refused until a Checkpoint manages to truncate the
  /// log.
  ///
  /// `release_locks=false` keeps the transaction's locks held after the
  /// engine-level commit: the core layer finishes its own post-commit work
  /// (catalog handling) under them and then calls ReleaseTxnLocks().
  ///
  /// `publish_release` (optional) names lock-manager resources to release at
  /// the PUBLISH point — right after the writer-token handoff, before the
  /// durability wait — the same early-release discipline as the writer token
  /// itself. The core layer passes cluster-extent locks taken only for
  /// object creation here so insert-heavy workloads batch their fsyncs
  /// instead of serializing on X(cluster) across the durability wait.
  Status CommitTxn(TxnId txn, bool release_locks = true,
                   const std::vector<concur::ResourceId>* publish_release =
                       nullptr);

  /// Drops the calling thread's transaction's shadow pages. Same
  /// `release_locks` contract as CommitTxn.
  Status AbortTxn(TxnId txn, bool release_locks = true);

  /// Releases the calling thread's transaction binding WITHOUT ending the
  /// transaction, so another thread can adopt it with AttachTxn. The
  /// transaction keeps its locks, shadow pages and id; until someone
  /// attaches it, no thread can operate on it. This is the session-migration
  /// primitive behind the network server: a connection's transaction hops
  /// between pool workers, one request at a time (docs/SERVER.md).
  /// InvalidArgument if the calling thread has no transaction here.
  Status DetachTxn();

  /// Adopts a previously detached transaction on the calling thread. Busy if
  /// this thread already has a transaction or if `txn` is currently attached
  /// elsewhere; NotFound if the id is not an active transaction. The
  /// detaching thread's writes happen-before the attaching thread's reads
  /// (both sides synchronize on the transaction table mutex).
  Status AttachTxn(TxnId txn);

  /// Releases every lock `txn` holds (for callers that committed/aborted
  /// with release_locks=false).
  void ReleaseTxnLocks(TxnId txn);

  /// True if the CALLING THREAD has an active transaction on this engine.
  bool in_txn() const;
  /// The calling thread's transaction id, or 0.
  TxnId active_txn() const;
  /// Transactions active across all threads.
  size_t active_txn_count() const;

  // --- MVCC snapshots (docs/CONCURRENCY.md "MVCC snapshot reads") ----------

  /// Turns the calling thread's transaction into a snapshot reader: mints a
  /// snapshot sequence from the durable publish horizon (everything with
  /// commit_seq <= the minted value is installed in the pool) and registers
  /// it in the active-snapshot set that gates version GC. The transaction
  /// must not have written anything. Returns the snapshot sequence.
  Result<uint64_t> MarkSnapshot();

  /// Registers the calling thread's transaction as a snapshot reader at the
  /// GIVEN sequence instead of minting a fresh horizon — the primitive
  /// behind parallel query workers, which must all read the exact cut their
  /// coordinator minted (docs/CONCURRENCY.md "Parallel query execution").
  /// `seq` must be at or below the durable horizon and at or above the GC
  /// watermark; the caller guarantees the latter by keeping the coordinator
  /// snapshot registered (its entry pins the watermark at or below `seq`).
  /// Busy if a structure op is active or the watermark has moved past `seq`.
  Result<uint64_t> MarkSnapshotAt(uint64_t seq);

  /// The calling thread's transaction's snapshot sequence, or 0 if it is not
  /// a snapshot reader.
  uint64_t SnapshotSeq() const;

  /// The write stamp for the calling thread's transaction: the publish
  /// sequence its commit WILL get. Acquires the writer token first (may
  /// return Deadlock/Busy); the token serializes publishes, so the reserved
  /// value is exact. The objstore stamps this into object-table entries so
  /// snapshot readers can resolve visibility.
  Result<uint64_t> WriteStampSeq();

  /// Oldest snapshot sequence still in use by an active snapshot reader, or
  /// the current durable horizon when none are active. Versions whose
  /// successor committed at or before this watermark are invisible to every
  /// present and future snapshot and may be garbage-collected.
  uint64_t SnapshotWatermark() const;

  /// Active snapshot readers across all threads (DDL-style operations that
  /// physically free pages check this before proceeding).
  size_t active_snapshot_count() const;

  /// Registers the calling thread's transaction as a STRUCTURE OPERATION —
  /// one that physically frees storage other readers might still resolve
  /// (delversion, drop cluster). Fails with Busy if any snapshot reader is
  /// active; on success, MarkSnapshot returns Busy until this transaction
  /// finishes. The check and the barrier registration happen under one
  /// critical section, so a racing snapshot begin can never observe the
  /// operation mid-flight (the delversion TOCTOU fix — see
  /// docs/CONCURRENCY.md). Idempotent within a transaction.
  Status BeginStructureOp();

  /// Highest publish sequence whose page images are installed in the pool
  /// (the durable horizon snapshot sequences are minted from).
  uint64_t SyncedSeq() const;

  // --- Page access ---------------------------------------------------------

  /// A readable view of `id`: the calling transaction's shadow copy if it
  /// has one, else the committed image (shared-ownership handle — stays
  /// valid across concurrent commits).
  Status GetPageRead(PageId id, PageHandle* handle);

  /// A writable view of `id` in the calling thread's transaction: a private
  /// shadow copy seeded from the committed image on first touch. Acquires
  /// the global writer token first (may return Deadlock/Busy).
  Status GetPageWrite(PageId id, PageHandle* handle);

  /// Allocates a page (free list first, then file extension) within the
  /// calling thread's transaction and returns it as a writable shadow,
  /// zero-filled.
  Status AllocPage(PageId* id, PageHandle* handle);

  /// Returns `id` to the free list within the calling thread's transaction.
  Status FreePage(PageId id);

  // --- Superblock fields ---------------------------------------------------

  Result<uint32_t> ReadSuperU32(uint32_t offset);
  Result<uint64_t> ReadSuperU64(uint32_t offset);
  Status WriteSuperU32(uint32_t offset, uint32_t value);  ///< Needs a txn.
  Status WriteSuperU64(uint32_t offset, uint64_t value);  ///< Needs a txn.

  // --- Maintenance ---------------------------------------------------------

  /// Flushes all committed dirty pages, syncs the db file, truncates the WAL.
  /// Fails with Busy while any transaction is active (also runs
  /// automatically after a commit that crossed checkpoint_wal_bytes, while
  /// the committer still holds the writer token).
  Status Checkpoint();

  /// Fuzzy (incremental) checkpoint — docs/STORAGE.md "Fuzzy checkpoints".
  /// Phase 1 writes the dirty set behind and syncs the db file with NO
  /// engine-wide lock held, so commits keep publishing. Phase 2 takes the
  /// log latch for a short critical section: a bounded wait for any
  /// in-flight group-commit batch, a flush of the (small) residual dirty
  /// set, then the horizon reset and WAL truncation. Unlike Checkpoint(),
  /// runs with transactions active: their shadow pages are private and
  /// their publishes are excluded by the latch. If a batch stays in flight
  /// past the bound the reset is deferred (OK is returned;
  /// storage.checkpoint.deferred counts it). dead_seqs_ is kept — live
  /// transactions may still hold dependencies into failed batches.
  Status FuzzyCheckpoint();

  /// Reclaims trailing free pages: unlinks every free page at the end of
  /// the file from the free list, commits the shrunken metadata, checkpoints
  /// and truncates the file. Returns the number of pages released. Fails
  /// with Busy while any transaction is active; other threads cannot begin
  /// one until it finishes.
  Result<uint32_t> Vacuum();

  /// Test hook: drops the engine as a crash would — no checkpoint, no page
  /// write-back. Committed state only survives via WAL recovery on reopen.
  /// (The background checkpointer, if any, is joined first so it cannot
  /// write pages after the "crash".)
  void SimulateCrash();

  BufferPool& buffer_pool() { return *pool_; }
  Wal& wal() { return *wal_; }
  concur::LockManager& lock_manager() { return *locks_; }
  const Stats& stats() const { return stats_; }
  const std::string& path() const { return path_; }
  /// The registry this engine reports into (resolved from
  /// EngineOptions::metrics; never null).
  MetricsRegistry& metrics() { return *metrics_; }

 private:
  StorageEngine(std::string path, std::unique_ptr<Pager> pager,
                std::unique_ptr<Wal> wal, const EngineOptions& options);

  /// Per-transaction private state. Owned by txns_; the owning thread also
  /// reaches it lock-free through a thread-local binding keyed by this
  /// engine's globally-unique generation (so a reopened engine landing at a
  /// recycled heap address can never match a stale binding).
  struct TxnState {
    TxnId id = 0;
    std::thread::id owner;
    /// True between DetachTxn and AttachTxn: no thread is bound to this
    /// transaction and any thread may adopt it.
    bool detached = false;
    /// Private copies of every page this transaction wrote. std::map so
    /// commit logs images in page order (deterministic WAL layout).
    std::map<PageId, std::unique_ptr<char[]>> shadows;
    bool has_writer_token = false;
    /// Reserved publish sequence (WriteStampSeq), 0 if never asked for. The
    /// writer token pins it: no other publish can intervene, so the commit's
    /// me.seq is guaranteed to equal it.
    uint64_t stamp_seq = 0;
    /// Snapshot-reader state (MarkSnapshot): the minted sequence. Only
    /// meaningful when is_snapshot is set (a fresh database mints seq 0).
    bool is_snapshot = false;
    uint64_t snapshot_seq = 0;
    /// Set by BeginStructureOp: this transaction blocks new snapshots until
    /// it finishes (structure_ops_ is decremented in FinishTxn).
    bool structure_op = false;
    /// Commit sequence numbers of every appended-but-not-yet-synced image
    /// this transaction read or seeded a shadow from (see pending_). If any
    /// of them lands in a failed batch, this transaction read data that
    /// never became durable and its own commit must degrade to an abort.
    std::vector<uint64_t> dep_seqs;
  };

  /// The calling thread's transaction on THIS engine, or nullptr.
  TxnState* CurrentTxn() const;
  void BindTls(TxnState* txn) const;
  void UnbindTls() const;

  /// Acquires the global writer token for `txn` if not yet held.
  Status EnsureWriterToken(TxnState* txn);

  /// Removes `txn` from txns_ (txn_mu_ taken internally), updates stats, and
  /// unbinds the calling thread's binding. Does NOT release locks.
  void FinishTxn(TxnState* txn, bool committed);

  /// Flush + sync + WAL reset + next_txn_id stamp. Caller must guarantee no
  /// concurrent WAL appends (holds txn_mu_ with txns_ empty — committing
  /// sessions stay in txns_ until their batch is durable, so empty txns_
  /// implies an idle log and empty pending_).
  Status CheckpointLocked() REQUIRES(txn_mu_);

  /// Background checkpointer (EngineOptions::background_checkpoint): sleeps
  /// until CommitTxn observes the WAL past checkpoint_wal_bytes and nudges
  /// it, then runs FuzzyCheckpoint.
  void CheckpointerMain();
  /// Signals the checkpointer to exit and joins it. Idempotent; called from
  /// Close(), SimulateCrash() and the destructor.
  void StopCheckpointer();

  // --- Group commit (docs/STORAGE.md "Group commit") -----------------------

  /// A committed-but-unsynced page image, tagged with the publish sequence
  /// of the commit it belongs to. Chains per page live in pending_ in
  /// ascending seq order; the newest covered entry wins at publish time.
  struct PendingImage {
    uint64_t seq = 0;
    std::shared_ptr<char[]> image;
  };

  /// A committing session's slot in the durability queue. Stack-allocated in
  /// CommitTxn; the leader fills status/done for every waiter its fsync
  /// covered (or killed) and notifies commit_cv_.
  struct SyncWaiter {
    uint64_t seq = 0;
    bool done = false;
    Status status;
  };

  /// Blocks until `me` (already registered in sync_queue_) is resolved,
  /// electing this thread batch leader whenever no fsync is in flight.
  Status WaitForDurable(SyncWaiter* me);

  /// Read-only-with-dependencies commits: waits until publish sequence `seq`
  /// is durable (or its batch failed). Registers its own waiter.
  Status WaitForDurableSeq(uint64_t seq);

  /// Leader epilogue: on success installs pending images up to `target_seq`
  /// into the pool and advances the synced horizon; on failure scrubs every
  /// unsynced record off the log, clears pending_, and records the dead
  /// sequence interval. Resolves and dequeues the covered waiters either way.
  void CompleteBatchLocked(uint64_t target_seq, uint64_t target_off,
                           const Status& synced) REQUIRES(commit_mu_);

  void PublishPendingLocked(uint64_t target_seq) REQUIRES(commit_mu_);

  /// True if `seq` belongs to a batch whose fsync failed (data scrubbed).
  bool SeqDeadLocked(uint64_t seq) const REQUIRES(commit_mu_);
  bool AnyDepDeadLocked(const TxnState& txn) const REQUIRES(commit_mu_);

  std::string path_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<concur::LockManager> locks_;
  EngineOptions options_;
  /// Globally unique per engine instance (see TxnState).
  const uint64_t gen_;

  /// The log latch: serializes WAL appends/truncation and guards the
  /// group-commit state below. Held only for short critical sections — the
  /// leader's fsync itself runs with the latch dropped. Lock order:
  /// txn_mu_ before commit_mu_ before pool shard mutexes; never the reverse.
  mutable Mutex commit_mu_;
  CondVar commit_cv_;
  /// True while a batch leader's fsync is in flight (leadership token).
  bool sync_active_ GUARDED_BY(commit_mu_) = false;
  /// Publish sequence of the most recent durable-mode commit appended to the
  /// log; 0 before any. Monotone, never reset (survives checkpoints).
  uint64_t commit_seq_ GUARDED_BY(commit_mu_) = 0;
  /// Highest publish sequence known durable.
  uint64_t synced_seq_ GUARDED_BY(commit_mu_) = 0;
  /// Log length in bytes known durable; a failed batch truncates back here.
  uint64_t synced_wal_offset_ GUARDED_BY(commit_mu_) = 0;
  /// Committed-but-unsynced page images, per page in ascending seq order.
  /// The writer token holder reads through this overlay (it must see the
  /// newest committed image even before the fsync lands); everyone else
  /// sees only the pool, i.e. only durable state.
  std::unordered_map<PageId, std::vector<PendingImage>> pending_
      GUARDED_BY(commit_mu_);
  /// Sessions between publish and durability, in publish order.
  std::deque<SyncWaiter*> sync_queue_ GUARDED_BY(commit_mu_);
  /// Closed [lo, hi] publish-sequence intervals of failed batches. Commits
  /// whose dep_seqs intersect these read never-durable data and must abort.
  /// Cleared at checkpoint (no transactions alive, so no deps either).
  std::vector<std::pair<uint64_t, uint64_t>> dead_seqs_ GUARDED_BY(commit_mu_);
  /// Snapshot sequences of active snapshot readers (multiset: several
  /// snapshots can mint the same horizon). Min = the GC watermark.
  std::multiset<uint64_t> active_snapshots_ GUARDED_BY(commit_mu_);
  /// Active structure operations (BeginStructureOp): while nonzero, new
  /// snapshots are refused with Busy. Shares commit_mu_ with
  /// active_snapshots_ so check-and-register is one critical section.
  size_t structure_ops_ GUARDED_BY(commit_mu_) = 0;

  /// Background-checkpointer handshake. ckpt_mu_ is a leaf lock (never held
  /// while taking txn_mu_/commit_mu_/shard mutexes): CommitTxn only sets the
  /// wake flag under it, and the checkpointer drops it before running
  /// FuzzyCheckpoint.
  Mutex ckpt_mu_;
  CondVar ckpt_cv_;
  bool ckpt_stop_ GUARDED_BY(ckpt_mu_) = false;
  bool ckpt_wake_ GUARDED_BY(ckpt_mu_) = false;
  std::thread checkpointer_;

  mutable Mutex txn_mu_;  ///< Guards txns_, vacuum gate, checkpoint gate.
  std::unordered_map<TxnId, std::unique_ptr<TxnState>> txns_
      GUARDED_BY(txn_mu_);
  std::atomic<TxnId> next_txn_id_{1};
  bool vacuum_active_ GUARDED_BY(txn_mu_) = false;
  std::thread::id vacuum_owner_ GUARDED_BY(txn_mu_);

  Stats stats_;
  MetricsRegistry* metrics_;  // resolved, never null
  // Registry mirrors of Stats (storage.engine.*).
  Counter* m_txn_begins_;
  Counter* m_txn_commits_;
  Counter* m_txn_aborts_;
  Counter* m_commit_failures_;
  Counter* m_checkpoints_;
  Counter* m_pages_allocated_;
  Counter* m_pages_freed_;
  Gauge* m_active_txns_;
  // Group-commit instruments (storage.wal.group_commit.*, txn.*).
  Histogram* m_gc_batch_size_;   ///< commits resolved per successful fsync
  Histogram* m_gc_wait_us_;      ///< per-session durability wait
  Counter* m_gc_fsyncs_;         ///< successful batch fsyncs
  Counter* m_gc_commits_;        ///< commits made durable by batch fsyncs
  Gauge* m_commits_per_fsync_;   ///< txn.commits_per_fsync (derived ratio)
  // Fuzzy-checkpoint instruments (storage.checkpoint.*).
  Counter* m_ckpt_fuzzy_;        ///< fuzzy checkpoints completed
  Counter* m_ckpt_deferred_;     ///< horizon resets deferred (batch in flight)
  Counter* m_ckpt_wb_pages_;     ///< pages written behind (phase 1)
  Histogram* m_ckpt_critical_us_;///< phase-2 critical-section length
  Gauge* m_ckpt_residual_;       ///< pages flushed inside the last critical
                                 ///< section (must stay small for flat p99)
  bool closed_ = false;
  /// A failed commit could not scrub its partial WAL records; replaying them
  /// after more commits could resurrect a rolled-back transaction, so the
  /// engine refuses new transactions until a checkpoint empties the log.
  std::atomic<bool> wedged_{false};
};

}  // namespace ode

#endif  // ODE_STORAGE_ENGINE_H_
