#ifndef ODE_STORAGE_ENGINE_H_
#define ODE_STORAGE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>

#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/pager.h"
#include "storage/wal.h"
#include "util/status.h"

namespace ode {

/// Tuning knobs for the storage engine.
struct EngineOptions {
  size_t buffer_pool_pages = 1024;  ///< 4 MiB of cache by default.
  Wal::SyncMode wal_sync = Wal::SyncMode::kSyncEveryCommit;
  /// Checkpoint (flush pages + truncate log) once the WAL exceeds this size.
  uint64_t checkpoint_wal_bytes = 8ull << 20;
  /// I/O environment for the database file and WAL; nullptr means
  /// Env::Default(). Tests inject a FaultInjectionEnv here.
  Env* env = nullptr;
  /// Metrics registry receiving the engine's `storage.*` instrument updates
  /// (and, through Database, the `txn.*` / `query.*` ones); nullptr means
  /// MetricsRegistry::Global(). Tests that assert exact counts pass their
  /// own registry here.
  MetricsRegistry* metrics = nullptr;
};

/// The transactional page store: pager + buffer pool + redo WAL + recovery.
///
/// Transaction model (matches the paper's "an O++ program is a single
/// transaction"): exactly one transaction may be active at a time. Page
/// writes within a transaction are buffered (no-steal); the first write to a
/// page snapshots an undo image so Abort can restore it in memory. Commit
/// logs the after-image of every dirtied page plus a commit record; the pages
/// then become flushable and reach the database file via eviction or
/// checkpoints. Opening a database replays committed transactions from the
/// log (crash recovery).
class StorageEngine {
 public:
  struct Stats {
    uint64_t txns_committed = 0;
    uint64_t txns_aborted = 0;
    uint64_t pages_allocated = 0;
    uint64_t pages_freed = 0;
    uint64_t checkpoints = 0;
    uint64_t commit_failures = 0;  ///< Commits degraded to aborts by I/O errors.
  };

  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  /// Opens (creating if needed) the database at `path` (the WAL lives at
  /// `path` + ".wal"). Runs crash recovery if the log is non-empty.
  static Status Open(const std::string& path, const EngineOptions& options,
                     std::unique_ptr<StorageEngine>* out);

  /// Checkpoints and closes. The destructor also checkpoints best-effort.
  Status Close();

  ~StorageEngine();

  // --- Transactions -------------------------------------------------------

  /// Starts a transaction. Fails with Busy if one is already active, with
  /// IOError if a previous commit failure wedged the engine (see CommitTxn).
  Result<TxnId> BeginTxn();

  /// Durably commits the active transaction. If appending the page images or
  /// the commit record fails, the commit degrades to an abort: the partial
  /// log records are scrubbed, every touched page is restored from its undo
  /// image, and the engine stays usable (the error is still returned). Only
  /// if the scrub itself also fails — the log may then still hold the dead
  /// transaction's records — does the engine wedge itself: further
  /// transactions are refused until a Checkpoint manages to truncate the log.
  Status CommitTxn(TxnId txn);

  /// Rolls back every page the active transaction touched.
  Status AbortTxn(TxnId txn);

  bool in_txn() const { return active_txn_ != 0; }
  TxnId active_txn() const { return active_txn_; }

  // --- Page access ---------------------------------------------------------

  /// Pins `id` for reading.
  Status GetPageRead(PageId id, PageHandle* handle);

  /// Pins `id` for writing within the active transaction; snapshots an undo
  /// image the first time the transaction touches the page.
  Status GetPageWrite(PageId id, PageHandle* handle);

  /// Allocates a page (free list first, then file extension) within the
  /// active transaction and returns it pinned for writing, zero-filled.
  Status AllocPage(PageId* id, PageHandle* handle);

  /// Returns `id` to the free list within the active transaction.
  Status FreePage(PageId id);

  // --- Superblock fields ---------------------------------------------------

  Result<uint32_t> ReadSuperU32(uint32_t offset);
  Result<uint64_t> ReadSuperU64(uint32_t offset);
  Status WriteSuperU32(uint32_t offset, uint32_t value);  ///< Needs a txn.
  Status WriteSuperU64(uint32_t offset, uint64_t value);  ///< Needs a txn.

  // --- Maintenance ---------------------------------------------------------

  /// Flushes all committed dirty pages, syncs the db file, truncates the WAL.
  /// Must be called outside a transaction.
  Status Checkpoint();

  /// Reclaims trailing free pages: unlinks every free page at the end of
  /// the file from the free list, commits the shrunken metadata, checkpoints
  /// and truncates the file. Returns the number of pages released. Must be
  /// called outside a transaction.
  Result<uint32_t> Vacuum();

  /// Test hook: drops the engine as a crash would — no checkpoint, no page
  /// write-back. Committed state only survives via WAL recovery on reopen.
  void SimulateCrash() { closed_ = true; }

  BufferPool& buffer_pool() { return *pool_; }
  Wal& wal() { return *wal_; }
  const Stats& stats() const { return stats_; }
  const std::string& path() const { return path_; }
  /// The registry this engine reports into (resolved from
  /// EngineOptions::metrics; never null).
  MetricsRegistry& metrics() { return *metrics_; }

 private:
  StorageEngine(std::string path, std::unique_ptr<Pager> pager,
                std::unique_ptr<Wal> wal, const EngineOptions& options);

  struct UndoEntry {
    std::unique_ptr<char[]> image;
    bool was_dirty;  ///< Frame was committed-dirty before this txn touched it.
  };

  /// Restores undo images of every page the active transaction touched and
  /// clears the transaction state (shared by AbortTxn and failed commits).
  Status RollbackActiveTxn();

  std::string path_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<BufferPool> pool_;
  EngineOptions options_;

  TxnId active_txn_ = 0;
  TxnId next_txn_id_ = 1;
  std::set<PageId> txn_dirty_;  // Sorted so commit logging is deterministic.
  std::unordered_map<PageId, UndoEntry> undo_;
  Stats stats_;
  MetricsRegistry* metrics_;  // resolved, never null
  // Registry mirrors of Stats (storage.engine.*).
  Counter* m_txn_begins_;
  Counter* m_txn_commits_;
  Counter* m_txn_aborts_;
  Counter* m_commit_failures_;
  Counter* m_checkpoints_;
  Counter* m_pages_allocated_;
  Counter* m_pages_freed_;
  bool closed_ = false;
  /// A failed commit could not scrub its partial WAL records; replaying them
  /// after more commits could resurrect a rolled-back transaction, so the
  /// engine refuses new transactions until a checkpoint empties the log.
  bool wedged_ = false;
};

}  // namespace ode

#endif  // ODE_STORAGE_ENGINE_H_
