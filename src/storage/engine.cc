#include "storage/engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <set>
#include <vector>

#include "storage/recovery.h"
#include "util/coding.h"
#include "util/logging.h"

namespace ode {

namespace {

/// Engine-instance generations. Globally unique and monotone so a reopened
/// engine landing at a recycled heap address can never match a thread-local
/// binding left behind by its predecessor.
std::atomic<uint64_t> g_engine_gen{1};

}  // namespace

// --- Thread-local transaction binding --------------------------------------
//
// Each thread keeps a tiny map: engine generation -> its TxnState on that
// engine. A map (rather than a single slot) so one thread can interleave
// transactions on several engines (e.g. backup copying between databases).
// Entries are erased on transaction end; an engine that dies with a live
// entry (SimulateCrash) leaves a stale pair whose generation is never issued
// again, so it can never be looked up.

using TlsTxnMap = std::unordered_map<uint64_t, void*>;

static TlsTxnMap& TlsTxns() {
  static thread_local TlsTxnMap map;
  return map;
}

StorageEngine::TxnState* StorageEngine::CurrentTxn() const {
  TlsTxnMap& map = TlsTxns();
  auto it = map.find(gen_);
  if (it == map.end()) return nullptr;
  return static_cast<TxnState*>(it->second);
}

void StorageEngine::BindTls(TxnState* txn) const { TlsTxns()[gen_] = txn; }

void StorageEngine::UnbindTls() const { TlsTxns().erase(gen_); }

// ---------------------------------------------------------------------------

StorageEngine::StorageEngine(std::string path, std::unique_ptr<Pager> pager,
                             std::unique_ptr<Wal> wal,
                             const EngineOptions& options)
    : path_(std::move(path)),
      pager_(std::move(pager)),
      wal_(std::move(wal)),
      pool_(new BufferPool(pager_.get(), options.buffer_pool_pages,
                           options.metrics, options.buffer_pool_shards)),
      locks_(new concur::LockManager(
          options.metrics != nullptr ? options.metrics
                                     : &MetricsRegistry::Global(),
          options.lock_wait_timeout_ms)),
      options_(options),
      gen_(g_engine_gen.fetch_add(1, std::memory_order_relaxed)),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : &MetricsRegistry::Global()) {
  m_txn_begins_ = metrics_->GetCounter("storage.engine.txn_begins");
  m_txn_commits_ = metrics_->GetCounter("storage.engine.txn_commits");
  m_txn_aborts_ = metrics_->GetCounter("storage.engine.txn_aborts");
  m_commit_failures_ = metrics_->GetCounter("storage.engine.commit_failures");
  m_checkpoints_ = metrics_->GetCounter("storage.engine.checkpoints");
  m_pages_allocated_ = metrics_->GetCounter("storage.engine.pages_allocated");
  m_pages_freed_ = metrics_->GetCounter("storage.engine.pages_freed");
  m_active_txns_ = metrics_->GetGauge("storage.engine.active_txns");
  m_gc_batch_size_ =
      metrics_->GetHistogram("storage.wal.group_commit.batch_size");
  m_gc_wait_us_ = metrics_->GetHistogram("storage.wal.group_commit.wait_us");
  m_gc_fsyncs_ = metrics_->GetCounter("storage.wal.group_commit.fsyncs");
  m_gc_commits_ = metrics_->GetCounter("storage.wal.group_commit.commits");
  m_commits_per_fsync_ = metrics_->GetGauge("txn.commits_per_fsync");
  m_ckpt_fuzzy_ = metrics_->GetCounter("storage.checkpoint.fuzzy");
  m_ckpt_deferred_ = metrics_->GetCounter("storage.checkpoint.deferred");
  m_ckpt_wb_pages_ =
      metrics_->GetCounter("storage.checkpoint.write_behind_pages");
  m_ckpt_critical_us_ =
      metrics_->GetHistogram("storage.checkpoint.critical_us");
  m_ckpt_residual_ = metrics_->GetGauge("storage.checkpoint.residual_pages");
  {
    // Everything in the log at open time survived recovery's own fsync-free
    // scan of a closed file; treat it as the durable prefix.
    MutexLock lock(commit_mu_);
    synced_wal_offset_ = wal_->size_bytes();
  }
  if (options_.background_checkpoint) {
    checkpointer_ = std::thread([this] { CheckpointerMain(); });
  }
}

StorageEngine::~StorageEngine() {
  if (!closed_) {
    Status s = Close();
    if (!s.ok()) {
      ODE_LOG(kError) << "close " << path_ << " failed: " << s.ToString();
    }
  }
  StopCheckpointer();  // no-op after Close()/SimulateCrash() already did it
}

Status StorageEngine::Open(const std::string& path,
                           const EngineOptions& options,
                           std::unique_ptr<StorageEngine>* out) {
  Env* env = options.env != nullptr ? options.env : Env::Default();
  std::unique_ptr<Pager> pager;
  bool created = false;
  ODE_RETURN_IF_ERROR(
      Pager::Open(env, path, &pager, &created, options.metrics));

  const std::string wal_path = path + ".wal";
  std::unique_ptr<Wal> wal;
  ODE_RETURN_IF_ERROR(
      Wal::Open(env, wal_path, options.wal_sync, &wal, options.metrics));

  if (wal->size_bytes() > 0) {
    RecoveryStats recovery_stats;
    ODE_RETURN_IF_ERROR(RunRecovery(pager.get(), wal.get(), &recovery_stats));
    ODE_LOG(kInfo) << "recovered " << path << ": "
                   << recovery_stats.committed_txns << " txns, "
                   << recovery_stats.pages_replayed << " page images"
                   << (recovery_stats.torn_tail_records > 0
                           ? " (torn tail discarded)"
                           : "");
  }

  std::unique_ptr<StorageEngine> engine(
      new StorageEngine(path, std::move(pager), std::move(wal), options));
  // Seed the transaction-id counter from the superblock. (The counter is
  // persisted at checkpoints and rides along in any committed superblock
  // image; after a crash, ids issued by transactions since the last
  // checkpointed value may be reissued — benign for redo correctness, ids
  // only group log records and replay is in log order.)
  ODE_ASSIGN_OR_RETURN(uint64_t next_txn, engine->ReadSuperU64(
                                              SuperblockLayout::kNextTxnIdOffset));
  engine->next_txn_id_.store(next_txn < 1 ? 1 : next_txn,
                             std::memory_order_relaxed);
  // Seed the publish-sequence counter. Every commit that stamps MVCC version
  // headers also stamps its sequence into the superblock image it logs, so
  // the recovered value is >= every version stamp on any recovered page —
  // the invariant snapshot visibility depends on (a fresh snapshot must see
  // all pre-crash commits).
  ODE_ASSIGN_OR_RETURN(uint64_t seq, engine->ReadSuperU64(
                                         SuperblockLayout::kCommitSeqOffset));
  {
    MutexLock lock(engine->commit_mu_);
    engine->commit_seq_ = seq;
    engine->synced_seq_ = seq;
  }
  *out = std::move(engine);
  return Status::OK();
}

void StorageEngine::StopCheckpointer() {
  if (!checkpointer_.joinable()) return;
  {
    MutexLock lock(ckpt_mu_);
    ckpt_stop_ = true;
  }
  ckpt_cv_.NotifyAll();
  checkpointer_.join();
}

void StorageEngine::CheckpointerMain() {
  for (;;) {
    {
      MutexLock lock(ckpt_mu_);
      while (!ckpt_stop_ && !ckpt_wake_) ckpt_cv_.Wait(ckpt_mu_);
      if (ckpt_stop_) return;
      ckpt_wake_ = false;
    }
    Status s = FuzzyCheckpoint();
    if (!s.ok()) {
      // Never fatal: the WAL keeps growing and the next commit re-nudges us;
      // recovery can always redo the work from the log.
      ODE_LOG(kWarn) << "background checkpoint failed: " << s.ToString();
    }
  }
}

void StorageEngine::SimulateCrash() {
  StopCheckpointer();
  closed_ = true;
}

Status StorageEngine::Close() {
  if (closed_) return Status::OK();
  StopCheckpointer();
  // Abort every still-active transaction, including ones leaked by other
  // threads (their thread-local bindings go stale; the generation check
  // keeps them from ever resolving again).
  std::vector<std::unique_ptr<TxnState>> leaked;
  {
    MutexLock lock(txn_mu_);
    for (auto& [id, txn] : txns_) leaked.push_back(std::move(txn));
    txns_.clear();
    m_active_txns_->Set(0);
  }
  for (auto& txn : leaked) {
    locks_->ReleaseAll(txn->id);
    stats_.txns_aborted.fetch_add(1, std::memory_order_relaxed);
    m_txn_aborts_->Add();
  }
  UnbindTls();
  Status s = Checkpoint();
  closed_ = true;
  return s;
}

Result<TxnId> StorageEngine::BeginTxn() {
  if (CurrentTxn() != nullptr) {
    return Status::Busy("a transaction is already active");
  }
  if (wedged_.load(std::memory_order_acquire)) {
    return Status::IOError(
        "engine wedged: a failed commit could not scrub the log; "
        "checkpoint (or reopen) before starting new transactions");
  }
  auto txn = std::make_unique<TxnState>();
  TxnState* raw = txn.get();
  {
    MutexLock lock(txn_mu_);
    if (vacuum_active_ && vacuum_owner_ != std::this_thread::get_id()) {
      return Status::Busy("vacuum in progress");
    }
    txn->id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
    txn->owner = std::this_thread::get_id();
    txns_.emplace(txn->id, std::move(txn));
    m_active_txns_->Set(static_cast<int64_t>(txns_.size()));
  }
  BindTls(raw);
  m_txn_begins_->Add();
  return raw->id;
}

Status StorageEngine::DetachTxn() {
  TxnState* state = CurrentTxn();
  if (state == nullptr) {
    return Status::InvalidArgument(
        "DetachTxn: no active transaction on this thread");
  }
  {
    // txn_mu_ publishes every shadow-page write this thread made to whichever
    // thread attaches next (its AttachTxn acquires the same mutex).
    MutexLock lock(txn_mu_);
    state->detached = true;
    state->owner = std::thread::id();
  }
  UnbindTls();
  return Status::OK();
}

Status StorageEngine::AttachTxn(TxnId txn) {
  if (CurrentTxn() != nullptr) {
    return Status::Busy("AttachTxn: a transaction is already active on this "
                        "thread");
  }
  TxnState* state = nullptr;
  {
    MutexLock lock(txn_mu_);
    auto it = txns_.find(txn);
    if (it == txns_.end()) {
      return Status::NotFound("AttachTxn: no active transaction " +
                              std::to_string(txn));
    }
    if (!it->second->detached) {
      return Status::Busy("AttachTxn: transaction " + std::to_string(txn) +
                          " is attached to another thread");
    }
    it->second->detached = false;
    it->second->owner = std::this_thread::get_id();
    state = it->second.get();
  }
  BindTls(state);
  return Status::OK();
}

Status StorageEngine::EnsureWriterToken(TxnState* txn) {
  if (txn->has_writer_token) return Status::OK();
  ODE_RETURN_IF_ERROR(locks_->Acquire(txn->id, concur::kWriterResource,
                                      concur::LockMode::kExclusive));
  txn->has_writer_token = true;
  return Status::OK();
}

void StorageEngine::FinishTxn(TxnState* txn, bool committed) {
  const TxnId id = txn->id;
  if (txn->is_snapshot || txn->structure_op) {
    MutexLock lock(commit_mu_);
    if (txn->is_snapshot) {
      // Retire this reader from the active-snapshot set; the GC watermark
      // may advance past versions only this snapshot could still see.
      auto it = active_snapshots_.find(txn->snapshot_seq);
      if (it != active_snapshots_.end()) active_snapshots_.erase(it);
    }
    if (txn->structure_op && structure_ops_ > 0) {
      // Lift the structure-op barrier; snapshots may begin again.
      structure_ops_--;
    }
  }
  UnbindTls();
  {
    MutexLock lock(txn_mu_);
    txns_.erase(id);  // destroys *txn
    m_active_txns_->Set(static_cast<int64_t>(txns_.size()));
  }
  if (committed) {
    stats_.txns_committed.fetch_add(1, std::memory_order_relaxed);
    m_txn_commits_->Add();
  } else {
    stats_.txns_aborted.fetch_add(1, std::memory_order_relaxed);
    m_txn_aborts_->Add();
  }
}

Status StorageEngine::CommitTxn(
    TxnId txn, bool release_locks,
    const std::vector<concur::ResourceId>* publish_release) {
  TxnState* state = CurrentTxn();
  if (txn == 0 || state == nullptr || state->id != txn) {
    return Status::InvalidArgument("CommitTxn: not the active transaction");
  }
  if (state->shadows.empty()) {
    // Read-only: nothing to log or publish. But if the reads went through
    // the pending overlay (writer token held at some point), the values
    // handed to the caller are only as durable as the batches they came
    // from — wait for those before reporting success.
    Status durable = Status::OK();
    uint64_t dep_hi = 0;
    for (uint64_t dep : state->dep_seqs) dep_hi = std::max(dep_hi, dep);
    if (dep_hi != 0) durable = WaitForDurableSeq(dep_hi);
    if (!durable.ok()) {
      stats_.commit_failures.fetch_add(1, std::memory_order_relaxed);
      m_commit_failures_->Add();
      FinishTxn(state, /*committed=*/false);
      if (release_locks) locks_->ReleaseAll(txn);
      return durable;
    }
    FinishTxn(state, /*committed=*/true);
    if (release_locks) locks_->ReleaseAll(txn);
    return Status::OK();
  }
  assert(state->has_writer_token);

  // A transaction that stamped MVCC version headers must persist its publish
  // sequence: force the superblock into its write set so the in-latch stamp
  // below rides along. Without this, a crash after the commit would reopen
  // the engine with commit_seq_ below stamps already on disk, making durably
  // committed objects invisible to post-crash snapshots.
  if (state->stamp_seq != 0 &&
      state->shadows.find(kSuperblockPageId) == state->shadows.end()) {
    PageHandle super;
    Status seeded = GetPageWrite(kSuperblockPageId, &super);
    if (!seeded.ok()) {
      FinishTxn(state, /*committed=*/false);
      if (release_locks) locks_->ReleaseAll(txn);
      return seeded;
    }
  }

  const bool durable_mode =
      wal_->sync_mode() == Wal::SyncMode::kSyncEveryCommit;

  // Publish phase, under the log latch: append after-images in page order
  // plus the commit record (no fsync), assign the publish sequence, and move
  // the shadows into the pending overlay where the next writer token holder
  // can see them. If an append fails the commit degrades to an abort: scrub
  // the partial records off the log, drop the shadows, report the error, but
  // leave the engine usable.
  SyncWaiter me;
  Status logged;
  {
    MutexLock lock(commit_mu_);
    logged = [&]() -> Status {
      if (AnyDepDeadLocked(*state)) {
        return Status::IOError(
            "commit depends on a transaction whose group-commit fsync "
            "failed; rolled back");
      }
      // This commit's publish sequence. A reserved write stamp is exact:
      // the writer token (held since WriteStampSeq) serialized every
      // publish in between.
      const uint64_t seq = commit_seq_ + 1;
      assert(state->stamp_seq == 0 || state->stamp_seq == seq);
      // Ride the advanced id counter and the publish sequence along in the
      // superblock image if this transaction carries one (free persistence
      // across crashes; the sequence stamp keeps commit_seq_ monotone across
      // reopen — see Open()).
      auto super_it = state->shadows.find(kSuperblockPageId);
      if (super_it != state->shadows.end()) {
        EncodeFixed64(
            super_it->second.get() + SuperblockLayout::kNextTxnIdOffset,
            next_txn_id_.load(std::memory_order_relaxed));
        EncodeFixed64(
            super_it->second.get() + SuperblockLayout::kCommitSeqOffset, seq);
      }
      const uint64_t log_start = wal_->size_bytes();
      for (const auto& [id, image] : state->shadows) {
        ODE_RETURN_IF_ERROR(wal_->AppendPageImage(txn, id, image.get()));
      }
      Status appended = durable_mode ? wal_->AppendCommitRecord(txn)
                                     : wal_->AppendCommit(txn);
      if (!appended.ok()) {
        // Scrub: if some records reached the file, leaving them there would
        // let a later recovery resurrect the transaction we are about to
        // roll back.
        Status scrub = wal_->TruncateTo(log_start);
        if (!scrub.ok()) {
          wedged_.store(true, std::memory_order_release);
          ODE_LOG(kError) << "commit " << txn << " failed ("
                          << appended.ToString()
                          << ") and the log scrub also failed ("
                          << scrub.ToString() << "); engine wedged";
        }
        return appended;
      }
      if (durable_mode) {
        me.seq = ++commit_seq_;
        for (auto& [id, image] : state->shadows) {
          pending_[id].push_back(
              PendingImage{me.seq, std::shared_ptr<char[]>(std::move(image))});
        }
        state->shadows.clear();
        sync_queue_.push_back(&me);
      } else {
        // kNoSync: durability is the OS's problem; publish straight to the
        // pool. Installing under the latch keeps the snapshot invariant —
        // a snapshot minted at synced_seq_ S sees either all or none of a
        // commit's pages, never a torn subset.
        ++commit_seq_;
        for (const auto& [id, image] : state->shadows) {
          pool_->Install(id, image.get());
        }
        state->shadows.clear();
        synced_seq_ = commit_seq_;
      }
      return Status::OK();
    }();
  }
  if (!logged.ok()) {
    stats_.commit_failures.fetch_add(1, std::memory_order_relaxed);
    m_commit_failures_->Add();
    if (!wedged_.load(std::memory_order_acquire)) {
      ODE_LOG(kWarn) << "commit " << txn
                     << " failed, rolled back: " << logged.ToString();
    }
    FinishTxn(state, /*committed=*/false);
    if (release_locks) locks_->ReleaseAll(txn);
    return logged;
  }

  // The commit is published: release the resources the caller asked to drop
  // at the publish point (cluster-extent locks taken for object creation).
  // Like the writer-token handoff below, this trades a sliver of pre-
  // durability exposure for insert batching; see docs/CONCURRENCY.md.
  if (publish_release != nullptr) {
    for (concur::ResourceId res : *publish_release) {
      locks_->Release(txn, res);
    }
  }

  if (durable_mode) {
    // Durability phase. The records are published; the next writer can
    // already append behind us — hand over the writer token before blocking
    // on the shared fsync so commits overlap instead of serializing on it.
    locks_->Release(txn, concur::kWriterResource);
    state->has_writer_token = false;
    Status durable = WaitForDurable(&me);
    if (!durable.ok()) {
      // The whole batch failed; the leader already scrubbed the log and
      // dropped the pending images. Degrade to an abort.
      stats_.commit_failures.fetch_add(1, std::memory_order_relaxed);
      m_commit_failures_->Add();
      ODE_LOG(kWarn) << "commit " << txn
                     << " failed, rolled back: " << durable.ToString();
      FinishTxn(state, /*committed=*/false);
      if (release_locks) locks_->ReleaseAll(txn);
      return durable;
    }
  }
  FinishTxn(state, /*committed=*/true);

  // The transaction is committed; from here on nothing may turn that into
  // an error (the caller would wrongly conclude it aborted). Maintenance
  // failures (shrink, checkpoint) are logged — recovery can always redo the
  // work from the log.
  Status maintenance = pool_->ShrinkToCapacity();
  if (maintenance.ok() &&
      wal_->size_bytes() >= options_.checkpoint_wal_bytes) {
    if (options_.background_checkpoint) {
      // Nudge the fuzzy checkpointer and return — the commit path never
      // pays for the checkpoint, which is what keeps p99 flat under full
      // write load (docs/STORAGE.md "Fuzzy checkpoints").
      MutexLock lock(ckpt_mu_);
      ckpt_wake_ = true;
      ckpt_cv_.NotifyOne();
    } else {
      // Legacy inline path: auto-checkpoint under txn_mu_ with txns_ empty —
      // committing sessions stay registered until their batch is durable, so
      // an empty table means no one can be appending (BeginTxn also needs
      // txn_mu_, so no one can start while we hold it).
      MutexLock lock(txn_mu_);
      if (txns_.empty()) {
        maintenance = CheckpointLocked();
      }
    }
  }
  if (!maintenance.ok()) {
    ODE_LOG(kWarn) << "post-commit maintenance failed (txn " << txn
                   << " is committed): " << maintenance.ToString();
  }
  if (release_locks) locks_->ReleaseAll(txn);
  return Status::OK();
}

Status StorageEngine::WaitForDurableSeq(uint64_t seq) {
  SyncWaiter me;
  me.seq = seq;
  {
    MutexLock lock(commit_mu_);
    if (SeqDeadLocked(seq)) {
      return Status::IOError(
          "read data from a transaction whose group-commit fsync failed; "
          "rolled back");
    }
    if (seq <= synced_seq_) return Status::OK();
    sync_queue_.push_back(&me);
  }
  return WaitForDurable(&me);
}

Status StorageEngine::WaitForDurable(SyncWaiter* me) {
  const auto wait_start = std::chrono::steady_clock::now();
  commit_mu_.Lock();
  while (!me->done) {
    if (sync_active_) {
      // A leader's fsync is in flight; it (or a successor) will resolve us.
      commit_cv_.Wait(commit_mu_);
      continue;
    }
    // Become the batch leader.
    sync_active_ = true;
    if (options_.group_commit_window_us > 0) {
      // Let more committers publish and join the batch before paying for
      // the fsync. Nobody can resolve us meanwhile (we hold leadership), so
      // only the deadline ends the nap.
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(options_.group_commit_window_us);
      while (commit_cv_.WaitUntil(commit_mu_, deadline)) {
      }
    }
    const uint64_t target_seq = commit_seq_;
    const uint64_t target_off = wal_->size_bytes();
    commit_mu_.Unlock();
    Status synced = wal_->Sync();  // the one step outside the latch
    commit_mu_.Lock();
    CompleteBatchLocked(target_seq, target_off, synced);
    sync_active_ = false;
    commit_cv_.NotifyAll();
  }
  Status result = me->status;
  commit_mu_.Unlock();
  m_gc_wait_us_->Add(static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - wait_start)
          .count()));
  return result;
}

void StorageEngine::CompleteBatchLocked(uint64_t target_seq,
                                        uint64_t target_off,
                                        const Status& synced) {
  Status verdict = Status::OK();
  if (synced.ok()) {
    PublishPendingLocked(target_seq);
    synced_seq_ = std::max(synced_seq_, target_seq);
    synced_wal_offset_ = std::max(synced_wal_offset_, target_off);
  } else {
    // The fsync failed: nothing appended since the durable prefix can be
    // trusted, including records published AFTER this leader captured its
    // target (they sit behind the same unsynced tail). Scrub the log back
    // to the durable prefix, drop every pending image, and remember the
    // dead sequence interval so transactions that read those images abort.
    Status scrub = wal_->TruncateTo(synced_wal_offset_);
    pending_.clear();
    if (commit_seq_ > synced_seq_) {
      dead_seqs_.emplace_back(synced_seq_ + 1, commit_seq_);
    }
    std::string msg = "group commit fsync failed: " + synced.ToString();
    if (!scrub.ok()) {
      wedged_.store(true, std::memory_order_release);
      msg += "; log scrub also failed (" + scrub.ToString() +
             "), engine wedged";
      ODE_LOG(kError) << msg;
    } else {
      ODE_LOG(kWarn) << msg << "; unsynced records scrubbed";
    }
    verdict = Status::IOError(msg);
  }
  // Resolve the covered waiters: on success everyone the fsync reached; on
  // failure everyone queued (all their records were just scrubbed).
  size_t batch = 0;
  for (auto it = sync_queue_.begin(); it != sync_queue_.end();) {
    SyncWaiter* w = *it;
    if (synced.ok() && w->seq > target_seq) {
      ++it;
      continue;
    }
    w->status = verdict;
    w->done = true;
    it = sync_queue_.erase(it);
    batch++;
  }
  if (synced.ok()) {
    m_gc_fsyncs_->Add();
    m_gc_commits_->Add(batch);
    m_gc_batch_size_->Add(static_cast<double>(batch));
    const uint64_t fsyncs = m_gc_fsyncs_->value();
    if (fsyncs > 0) {
      m_commits_per_fsync_->Set(
          static_cast<int64_t>(m_gc_commits_->value() / fsyncs));
    }
  }
}

void StorageEngine::PublishPendingLocked(uint64_t target_seq) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    auto& chain = it->second;
    size_t covered = 0;
    while (covered < chain.size() && chain[covered].seq <= target_seq) {
      covered++;
    }
    if (covered > 0) {
      // The newest covered image wins; older ones were already superseded.
      pool_->Install(it->first, chain[covered - 1].image.get());
      chain.erase(chain.begin(), chain.begin() + covered);
    }
    if (chain.empty()) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

bool StorageEngine::SeqDeadLocked(uint64_t seq) const {
  for (const auto& [lo, hi] : dead_seqs_) {
    if (seq >= lo && seq <= hi) return true;
  }
  return false;
}

bool StorageEngine::AnyDepDeadLocked(const TxnState& txn) const {
  for (uint64_t dep : txn.dep_seqs) {
    if (SeqDeadLocked(dep)) return true;
  }
  return false;
}

Status StorageEngine::AbortTxn(TxnId txn, bool release_locks) {
  TxnState* state = CurrentTxn();
  if (txn == 0 || state == nullptr || state->id != txn) {
    return Status::InvalidArgument("AbortTxn: not the active transaction");
  }
  // Shadow paging makes abort trivial: the pool never saw this
  // transaction's writes, so dropping the shadows is the whole rollback.
  FinishTxn(state, /*committed=*/false);
  if (release_locks) locks_->ReleaseAll(txn);
  return Status::OK();
}

void StorageEngine::ReleaseTxnLocks(TxnId txn) { locks_->ReleaseAll(txn); }

bool StorageEngine::in_txn() const { return CurrentTxn() != nullptr; }

TxnId StorageEngine::active_txn() const {
  TxnState* state = CurrentTxn();
  return state != nullptr ? state->id : 0;
}

size_t StorageEngine::active_txn_count() const {
  MutexLock lock(txn_mu_);
  return txns_.size();
}

Result<uint64_t> StorageEngine::MarkSnapshot() {
  TxnState* state = CurrentTxn();
  if (state == nullptr) {
    return Status::InvalidArgument("MarkSnapshot: no active transaction");
  }
  if (!state->shadows.empty() || state->has_writer_token) {
    return Status::InvalidArgument(
        "MarkSnapshot: transaction already wrote pages");
  }
  if (state->is_snapshot) return state->snapshot_seq;
  MutexLock lock(commit_mu_);
  if (structure_ops_ > 0) {
    // A structure operation (delversion/drop cluster) is physically freeing
    // storage; a snapshot minted now could resolve into it mid-flight.
    // Busy — RunReadTransaction retries once the operation finishes.
    return Status::Busy("snapshot must wait for an active structure op");
  }
  // Mint from the durable horizon: every image with seq <= synced_seq_ is
  // installed in the pool (installs and the horizon advance under this
  // latch), so the snapshot reads a consistent committed cut. Images
  // installed later carry larger stamps and are filtered by visibility.
  state->is_snapshot = true;
  state->snapshot_seq = synced_seq_;
  active_snapshots_.insert(state->snapshot_seq);
  return state->snapshot_seq;
}

Result<uint64_t> StorageEngine::MarkSnapshotAt(uint64_t seq) {
  TxnState* state = CurrentTxn();
  if (state == nullptr) {
    return Status::InvalidArgument("MarkSnapshotAt: no active transaction");
  }
  if (!state->shadows.empty() || state->has_writer_token) {
    return Status::InvalidArgument(
        "MarkSnapshotAt: transaction already wrote pages");
  }
  if (state->is_snapshot) {
    if (state->snapshot_seq != seq) {
      return Status::InvalidArgument(
          "MarkSnapshotAt: already a snapshot at a different sequence");
    }
    return seq;
  }
  MutexLock lock(commit_mu_);
  if (structure_ops_ > 0) {
    return Status::Busy("snapshot must wait for an active structure op");
  }
  if (seq > synced_seq_) {
    return Status::InvalidArgument(
        "MarkSnapshotAt: sequence beyond the durable horizon");
  }
  // Joining at `seq` must not resurrect versions GC may already have
  // reclaimed: `seq` has to sit at or above the current watermark. A
  // parallel-query coordinator guarantees this by keeping its own snapshot
  // registered at the same sequence — verified here rather than trusted.
  const uint64_t watermark =
      active_snapshots_.empty() ? synced_seq_ : *active_snapshots_.begin();
  if (seq < watermark) {
    return Status::Busy("MarkSnapshotAt: sequence below the GC watermark");
  }
  state->is_snapshot = true;
  state->snapshot_seq = seq;
  active_snapshots_.insert(seq);
  return seq;
}

uint64_t StorageEngine::SnapshotSeq() const {
  TxnState* state = CurrentTxn();
  return (state != nullptr && state->is_snapshot) ? state->snapshot_seq : 0;
}

Result<uint64_t> StorageEngine::WriteStampSeq() {
  TxnState* state = CurrentTxn();
  if (state == nullptr) {
    return Status::InvalidArgument("WriteStampSeq: no active transaction");
  }
  if (state->is_snapshot) {
    return Status::InvalidArgument(
        "WriteStampSeq: snapshot transactions are read-only");
  }
  if (state->stamp_seq != 0) return state->stamp_seq;
  // Token first: publishes are token-serialized, so commit_seq_ cannot
  // advance between the reservation and this transaction's own publish.
  ODE_RETURN_IF_ERROR(EnsureWriterToken(state));
  MutexLock lock(commit_mu_);
  state->stamp_seq = commit_seq_ + 1;
  return state->stamp_seq;
}

uint64_t StorageEngine::SnapshotWatermark() const {
  MutexLock lock(commit_mu_);
  if (!active_snapshots_.empty()) return *active_snapshots_.begin();
  return synced_seq_;
}

size_t StorageEngine::active_snapshot_count() const {
  MutexLock lock(commit_mu_);
  return active_snapshots_.size();
}

Status StorageEngine::BeginStructureOp() {
  TxnState* state = CurrentTxn();
  if (state == nullptr) {
    return Status::InvalidArgument("BeginStructureOp: no active transaction");
  }
  if (state->is_snapshot) {
    return Status::InvalidArgument(
        "BeginStructureOp: snapshot transactions are read-only");
  }
  if (state->structure_op) return Status::OK();
  MutexLock lock(commit_mu_);
  // Check and register under ONE critical section: either a snapshot exists
  // (we back off) or the barrier is up before any snapshot can mint — there
  // is no window where both proceed.
  if (!active_snapshots_.empty()) {
    return Status::Busy("structure op must wait for active snapshot readers");
  }
  state->structure_op = true;
  structure_ops_++;
  return Status::OK();
}

uint64_t StorageEngine::SyncedSeq() const {
  MutexLock lock(commit_mu_);
  return synced_seq_;
}

Status StorageEngine::GetPageRead(PageId id, PageHandle* handle) {
  TxnState* state = CurrentTxn();
  if (state != nullptr) {
    auto it = state->shadows.find(id);
    if (it != state->shadows.end()) {
      *handle = PageHandle::Borrowed(id, it->second.get());
      return Status::OK();
    }
    if (state->has_writer_token) {
      // The writer token holder must see the newest COMMITTED image even if
      // its batch has not fsynced yet — the pool only gets images after
      // durability. Everyone else reads the pool (durable state only).
      MutexLock lock(commit_mu_);
      auto p = pending_.find(id);
      if (p != pending_.end() && !p->second.empty()) {
        const PendingImage& newest = p->second.back();
        state->dep_seqs.push_back(newest.seq);
        *handle = PageHandle::Shared(id, newest.image);
        return Status::OK();
      }
    }
  }
  return pool_->FetchHandle(id, handle);
}

Status StorageEngine::GetPageWrite(PageId id, PageHandle* handle) {
  TxnState* state = CurrentTxn();
  if (state == nullptr) {
    return Status::InvalidArgument("page write outside a transaction");
  }
  ODE_RETURN_IF_ERROR(EnsureWriterToken(state));
  auto it = state->shadows.find(id);
  if (it == state->shadows.end()) {
    // First touch: seed a private shadow from the newest committed image —
    // the pending group-commit overlay first (a predecessor's commit may
    // not have fsynced yet), then the pool.
    auto image = std::make_unique<char[]>(kPageSize);
    bool seeded = false;
    {
      MutexLock lock(commit_mu_);
      auto p = pending_.find(id);
      if (p != pending_.end() && !p->second.empty()) {
        const PendingImage& newest = p->second.back();
        memcpy(image.get(), newest.image.get(), kPageSize);
        state->dep_seqs.push_back(newest.seq);
        seeded = true;
      }
    }
    if (!seeded) {
      PageHandle committed;
      ODE_RETURN_IF_ERROR(pool_->FetchHandle(id, &committed));
      memcpy(image.get(), committed.data(), kPageSize);
    }
    it = state->shadows.emplace(id, std::move(image)).first;
  }
  *handle = PageHandle::Borrowed(id, it->second.get());
  return Status::OK();
}

Status StorageEngine::AllocPage(PageId* id, PageHandle* handle) {
  TxnState* state = CurrentTxn();
  if (state == nullptr) {
    return Status::InvalidArgument("page allocation outside a transaction");
  }
  // Take the writer token BEFORE reading the allocation metadata: with
  // commits batched, a predecessor's free-list update may still sit in the
  // pending overlay, which only the token holder reads through. Reading the
  // pool first could hand out a page the predecessor already allocated.
  ODE_RETURN_IF_ERROR(EnsureWriterToken(state));
  ODE_ASSIGN_OR_RETURN(uint32_t free_head,
                       ReadSuperU32(SuperblockLayout::kFreeListOffset));
  PageId page;
  if (free_head != kInvalidPageId) {
    page = free_head;
    // Pop: head = page.next (stored in the free page's first 4 bytes).
    PageHandle freed;
    ODE_RETURN_IF_ERROR(GetPageWrite(page, &freed));
    const PageId next = DecodeFixed32(freed.data());
    ODE_RETURN_IF_ERROR(WriteSuperU32(SuperblockLayout::kFreeListOffset, next));
    memset(freed.mutable_data(), 0, kPageSize);
    *id = page;
    *handle = std::move(freed);
    stats_.pages_allocated.fetch_add(1, std::memory_order_relaxed);
    m_pages_allocated_->Add();
    return Status::OK();
  }
  // Extend the file.
  ODE_ASSIGN_OR_RETURN(uint32_t page_count,
                       ReadSuperU32(SuperblockLayout::kPageCountOffset));
  page = page_count;
  ODE_RETURN_IF_ERROR(
      WriteSuperU32(SuperblockLayout::kPageCountOffset, page_count + 1));
  PageHandle fresh;
  ODE_RETURN_IF_ERROR(GetPageWrite(page, &fresh));
  memset(fresh.mutable_data(), 0, kPageSize);
  *id = page;
  *handle = std::move(fresh);
  stats_.pages_allocated.fetch_add(1, std::memory_order_relaxed);
  m_pages_allocated_->Add();
  return Status::OK();
}

Status StorageEngine::FreePage(PageId id) {
  TxnState* state = CurrentTxn();
  if (state == nullptr) {
    return Status::InvalidArgument("page free outside a transaction");
  }
  if (id == kSuperblockPageId || id == kInvalidPageId) {
    return Status::InvalidArgument("cannot free page " + std::to_string(id));
  }
  // Same ordering as AllocPage: token first, then read the free-list head
  // through the pending overlay.
  ODE_RETURN_IF_ERROR(EnsureWriterToken(state));
  ODE_ASSIGN_OR_RETURN(uint32_t free_head,
                       ReadSuperU32(SuperblockLayout::kFreeListOffset));
  PageHandle handle;
  ODE_RETURN_IF_ERROR(GetPageWrite(id, &handle));
  memset(handle.mutable_data(), 0, kPageSize);
  EncodeFixed32(handle.mutable_data(), free_head);
  ODE_RETURN_IF_ERROR(WriteSuperU32(SuperblockLayout::kFreeListOffset, id));
  stats_.pages_freed.fetch_add(1, std::memory_order_relaxed);
  m_pages_freed_->Add();
  return Status::OK();
}

Result<uint32_t> StorageEngine::ReadSuperU32(uint32_t offset) {
  PageHandle handle;
  ODE_RETURN_IF_ERROR(GetPageRead(kSuperblockPageId, &handle));
  return DecodeFixed32(handle.data() + offset);
}

Result<uint64_t> StorageEngine::ReadSuperU64(uint32_t offset) {
  PageHandle handle;
  ODE_RETURN_IF_ERROR(GetPageRead(kSuperblockPageId, &handle));
  return DecodeFixed64(handle.data() + offset);
}

Status StorageEngine::WriteSuperU32(uint32_t offset, uint32_t value) {
  PageHandle handle;
  ODE_RETURN_IF_ERROR(GetPageWrite(kSuperblockPageId, &handle));
  EncodeFixed32(handle.mutable_data() + offset, value);
  return Status::OK();
}

Status StorageEngine::WriteSuperU64(uint32_t offset, uint64_t value) {
  PageHandle handle;
  ODE_RETURN_IF_ERROR(GetPageWrite(kSuperblockPageId, &handle));
  EncodeFixed64(handle.mutable_data() + offset, value);
  return Status::OK();
}

Result<uint32_t> StorageEngine::Vacuum() {
  {
    MutexLock lock(txn_mu_);
    if (!txns_.empty()) {
      return Status::Busy("cannot vacuum inside a transaction");
    }
    if (vacuum_active_) {
      return Status::Busy("vacuum in progress");
    }
    vacuum_active_ = true;
    vacuum_owner_ = std::this_thread::get_id();
  }
  // From here on, only this thread can begin transactions (BeginTxn's
  // vacuum gate); clear the gate on every exit.
  struct Ungate {
    StorageEngine* e;
    ~Ungate() {
      MutexLock lock(e->txn_mu_);
      e->vacuum_active_ = false;
    }
  } ungate{this};

  // Collect the free list.
  std::vector<PageId> free_pages;
  {
    ODE_ASSIGN_OR_RETURN(uint32_t head,
                         ReadSuperU32(SuperblockLayout::kFreeListOffset));
    PageId page = head;
    while (page != kInvalidPageId) {
      free_pages.push_back(page);
      if (free_pages.size() > (1u << 26)) {
        return Status::Corruption("free list cycle during vacuum");
      }
      PageHandle handle;
      ODE_RETURN_IF_ERROR(GetPageRead(page, &handle));
      page = DecodeFixed32(handle.data());
    }
  }
  ODE_ASSIGN_OR_RETURN(uint32_t page_count,
                       ReadSuperU32(SuperblockLayout::kPageCountOffset));
  // Find the maximal free tail.
  std::set<PageId> free_set(free_pages.begin(), free_pages.end());
  uint32_t new_count = page_count;
  while (new_count > 1 && free_set.count(new_count - 1) > 0) {
    new_count--;
  }
  const uint32_t released = page_count - new_count;
  if (released == 0) return 0u;

  // Rebuild the free list without the dropped tail, inside a transaction.
  ODE_ASSIGN_OR_RETURN(TxnId txn, BeginTxn());
  Status status = [&]() -> Status {
    PageId head = kInvalidPageId;
    for (auto it = free_pages.rbegin(); it != free_pages.rend(); ++it) {
      if (*it >= new_count) continue;
      PageHandle handle;
      ODE_RETURN_IF_ERROR(GetPageWrite(*it, &handle));
      memset(handle.mutable_data(), 0, kPageSize);
      EncodeFixed32(handle.mutable_data(), head);
      head = *it;
    }
    ODE_RETURN_IF_ERROR(WriteSuperU32(SuperblockLayout::kFreeListOffset, head));
    ODE_RETURN_IF_ERROR(
        WriteSuperU32(SuperblockLayout::kPageCountOffset, new_count));
    return Status::OK();
  }();
  if (!status.ok()) {
    ODE_RETURN_IF_ERROR(AbortTxn(txn));
    return status;
  }
  ODE_RETURN_IF_ERROR(CommitTxn(txn));
  // Metadata is durable; the dropped tail is unreferenced. Make sure no
  // stale frames survive, flush, then shrink the file. (A crash between
  // commit and truncate just leaves a harmless oversized file.)
  for (PageId p = new_count; p < page_count; p++) {
    pool_->Evict(p);
  }
  ODE_RETURN_IF_ERROR(Checkpoint());
  ODE_RETURN_IF_ERROR(pager_->TruncateToPages(new_count));
  ODE_RETURN_IF_ERROR(pager_->Sync());
  return released;
}

Status StorageEngine::Checkpoint() {
  MutexLock lock(txn_mu_);
  if (!txns_.empty()) {
    return Status::Busy("cannot checkpoint inside a transaction");
  }
  return CheckpointLocked();
}

Status StorageEngine::FuzzyCheckpoint() {
  // Phase 1 — write-behind: push the dirty set out and sync without any
  // engine-wide lock held. Commits keep publishing; whatever they re-dirty
  // meanwhile is caught by the (small) residual flush in phase 2.
  size_t behind = 0;
  ODE_RETURN_IF_ERROR(pool_->FlushAll(&behind));
  ODE_RETURN_IF_ERROR(pager_->Sync());
  m_ckpt_wb_pages_->Add(behind);

  // Phase 2 — horizon reset, under the log latch. New publishes are
  // excluded by the latch for the whole critical section. An in-flight
  // batch leader (out on its fsync with leadership held) gets a bounded
  // wait; if it does not resolve in time the reset is deferred — waiting
  // for the QUEUE to drain instead would never terminate under sustained
  // load, because every wait releases the latch and lets new publishes in.
  const auto critical_start = std::chrono::steady_clock::now();
  MutexLock lock(commit_mu_);
  const auto batch_deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(100);
  while (sync_active_) {
    if (!commit_cv_.WaitUntil(commit_mu_, batch_deadline)) break;
  }
  if (sync_active_) {
    m_ckpt_deferred_->Add();
    return Status::OK();
  }
  // Quiesce the unsynced tail ourselves, latch held: no leader is in flight
  // and publishes are excluded, so one covering fsync makes everything
  // published durable, and resolving that batch empties pending_ and the
  // queue — deterministically, without releasing the latch.
  if (!sync_queue_.empty() || !pending_.empty() || synced_seq_ < commit_seq_) {
    Status synced = wal_->Sync();
    CompleteBatchLocked(commit_seq_, wal_->size_bytes(), synced);
    commit_cv_.NotifyAll();  // waiters resolved above wake on their done flag
    if (!synced.ok()) return synced;  // failure path already scrubbed
  }
  // Everything published is durable and installed (synced_seq_ ==
  // commit_seq_). Stamp the id/sequence counters into the cached superblock
  // if they moved, flush the residual dirty set, and only then cut the log.
  // Taking pool shard mutexes here is the documented lock order
  // (commit_mu_ before shard mutexes).
  {
    PageHandle super;
    ODE_RETURN_IF_ERROR(pool_->FetchHandle(kSuperblockPageId, &super));
    const uint64_t next = next_txn_id_.load(std::memory_order_relaxed);
    const uint64_t seq = commit_seq_;
    if (DecodeFixed64(super.data() + SuperblockLayout::kNextTxnIdOffset) !=
            next ||
        DecodeFixed64(super.data() + SuperblockLayout::kCommitSeqOffset) !=
            seq) {
      char image[kPageSize];
      memcpy(image, super.data(), kPageSize);
      EncodeFixed64(image + SuperblockLayout::kNextTxnIdOffset, next);
      EncodeFixed64(image + SuperblockLayout::kCommitSeqOffset, seq);
      pool_->Install(kSuperblockPageId, image);
    }
  }
  size_t residual = 0;
  ODE_RETURN_IF_ERROR(pool_->FlushAll(&residual));
  ODE_RETURN_IF_ERROR(pager_->Sync());
  m_ckpt_residual_->Set(static_cast<int64_t>(residual));
  ODE_RETURN_IF_ERROR(wal_->Reset());
  synced_wal_offset_ = 0;
  synced_seq_ = commit_seq_;
  // dead_seqs_ stays, unlike the idle-engine checkpoint: live transactions
  // may still hold dep_seqs into failed batches, and those dependencies
  // must keep aborting their commits.
  stats_.checkpoints.fetch_add(1, std::memory_order_relaxed);
  m_checkpoints_->Add();
  m_ckpt_fuzzy_->Add();
  // An empty log can no longer resurrect anything: a wedge is resolved.
  wedged_.store(false, std::memory_order_release);
  m_ckpt_critical_us_->Add(static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - critical_start)
          .count()));
  return Status::OK();
}

Status StorageEngine::CheckpointLocked() {
  // Persist the id and publish-sequence counters: stamp them into the
  // committed superblock image so both keep advancing across a clean
  // close/reopen (MVCC version stamps on disk must never exceed a reopened
  // engine's starting commit_seq_).
  {
    PageHandle super;
    ODE_RETURN_IF_ERROR(pool_->FetchHandle(kSuperblockPageId, &super));
    const uint64_t next = next_txn_id_.load(std::memory_order_relaxed);
    uint64_t seq;
    {
      MutexLock lock(commit_mu_);
      seq = commit_seq_;
    }
    if (DecodeFixed64(super.data() + SuperblockLayout::kNextTxnIdOffset) !=
            next ||
        DecodeFixed64(super.data() + SuperblockLayout::kCommitSeqOffset) !=
            seq) {
      char image[kPageSize];
      memcpy(image, super.data(), kPageSize);
      EncodeFixed64(image + SuperblockLayout::kNextTxnIdOffset, next);
      EncodeFixed64(image + SuperblockLayout::kCommitSeqOffset, seq);
      pool_->Install(kSuperblockPageId, image);
    }
  }
  ODE_RETURN_IF_ERROR(pool_->FlushAll());
  ODE_RETURN_IF_ERROR(pager_->Sync());
  {
    // Reset the group-commit horizon together with the log. txns_ is empty
    // (caller holds txn_mu_), and committing sessions stay registered until
    // their batch resolves, so pending_ and sync_queue_ are empty too —
    // there is nothing in flight to lose. dead_seqs_ can go as well: no
    // live transaction means no dependencies on failed batches.
    MutexLock lock(commit_mu_);
    ODE_RETURN_IF_ERROR(wal_->Reset());
    synced_wal_offset_ = 0;
    synced_seq_ = commit_seq_;
    assert(pending_.empty());
    assert(sync_queue_.empty());
    dead_seqs_.clear();
  }
  stats_.checkpoints.fetch_add(1, std::memory_order_relaxed);
  m_checkpoints_->Add();
  // An empty log can no longer resurrect anything: a wedge (failed commit
  // whose partial records could not be scrubbed) is resolved.
  wedged_.store(false, std::memory_order_release);
  return Status::OK();
}

}  // namespace ode
