#include "storage/engine.h"

#include <cassert>
#include <set>
#include <vector>
#include <cstring>

#include "storage/recovery.h"
#include "util/coding.h"
#include "util/logging.h"

namespace ode {

StorageEngine::StorageEngine(std::string path, std::unique_ptr<Pager> pager,
                             std::unique_ptr<Wal> wal,
                             const EngineOptions& options)
    : path_(std::move(path)),
      pager_(std::move(pager)),
      wal_(std::move(wal)),
      pool_(new BufferPool(pager_.get(), options.buffer_pool_pages,
                           options.metrics)),
      options_(options),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : &MetricsRegistry::Global()) {
  m_txn_begins_ = metrics_->GetCounter("storage.engine.txn_begins");
  m_txn_commits_ = metrics_->GetCounter("storage.engine.txn_commits");
  m_txn_aborts_ = metrics_->GetCounter("storage.engine.txn_aborts");
  m_commit_failures_ = metrics_->GetCounter("storage.engine.commit_failures");
  m_checkpoints_ = metrics_->GetCounter("storage.engine.checkpoints");
  m_pages_allocated_ = metrics_->GetCounter("storage.engine.pages_allocated");
  m_pages_freed_ = metrics_->GetCounter("storage.engine.pages_freed");
}

StorageEngine::~StorageEngine() {
  if (!closed_) {
    Status s = Close();
    if (!s.ok()) {
      ODE_LOG(kError) << "close " << path_ << " failed: " << s.ToString();
    }
  }
}

Status StorageEngine::Open(const std::string& path,
                           const EngineOptions& options,
                           std::unique_ptr<StorageEngine>* out) {
  Env* env = options.env != nullptr ? options.env : Env::Default();
  std::unique_ptr<Pager> pager;
  bool created = false;
  ODE_RETURN_IF_ERROR(
      Pager::Open(env, path, &pager, &created, options.metrics));

  const std::string wal_path = path + ".wal";
  std::unique_ptr<Wal> wal;
  ODE_RETURN_IF_ERROR(
      Wal::Open(env, wal_path, options.wal_sync, &wal, options.metrics));

  if (wal->size_bytes() > 0) {
    RecoveryStats recovery_stats;
    ODE_RETURN_IF_ERROR(RunRecovery(pager.get(), wal.get(), &recovery_stats));
    ODE_LOG(kInfo) << "recovered " << path << ": "
                   << recovery_stats.committed_txns << " txns, "
                   << recovery_stats.pages_replayed << " page images"
                   << (recovery_stats.torn_tail_records > 0
                           ? " (torn tail discarded)"
                           : "");
  }

  std::unique_ptr<StorageEngine> engine(
      new StorageEngine(path, std::move(pager), std::move(wal), options));
  // Seed the transaction-id counter from the superblock.
  ODE_ASSIGN_OR_RETURN(uint64_t next_txn, engine->ReadSuperU64(
                                              SuperblockLayout::kNextTxnIdOffset));
  engine->next_txn_id_ = next_txn;
  *out = std::move(engine);
  return Status::OK();
}

Status StorageEngine::Close() {
  if (closed_) return Status::OK();
  if (in_txn()) {
    ODE_RETURN_IF_ERROR(AbortTxn(active_txn_));
  }
  Status s = Checkpoint();
  closed_ = true;
  return s;
}

Result<TxnId> StorageEngine::BeginTxn() {
  if (active_txn_ != 0) {
    return Status::Busy("a transaction is already active");
  }
  if (wedged_) {
    return Status::IOError(
        "engine wedged: a failed commit could not scrub the log; "
        "checkpoint (or reopen) before starting new transactions");
  }
  active_txn_ = next_txn_id_++;
  m_txn_begins_->Add();
  txn_dirty_.clear();
  undo_.clear();
  // Persist the advanced counter so a crash cannot reuse a txn id. This is
  // itself a superblock write within the transaction.
  ODE_RETURN_IF_ERROR(
      WriteSuperU64(SuperblockLayout::kNextTxnIdOffset, next_txn_id_));
  return active_txn_;
}

Status StorageEngine::CommitTxn(TxnId txn) {
  if (txn == 0 || txn != active_txn_) {
    return Status::InvalidArgument("CommitTxn: not the active transaction");
  }
  // Log after-images in page order, then the commit record. If any append or
  // the commit sync fails, the commit degrades to an abort: scrub the partial
  // records off the log, restore the undo images, and report the error, but
  // leave the engine usable.
  const uint64_t log_start = wal_->size_bytes();
  Status logged = [&]() -> Status {
    for (PageId id : txn_dirty_) {
      BufferPool::Frame* frame = nullptr;
      ODE_RETURN_IF_ERROR(pool_->Fetch(id, &frame));
      Status s = wal_->AppendPageImage(txn, id, frame->data.get());
      pool_->Unpin(frame);
      ODE_RETURN_IF_ERROR(s);
    }
    return wal_->AppendCommit(txn);
  }();
  if (!logged.ok()) {
    stats_.commit_failures++;
    m_commit_failures_->Add();
    // Scrub first: if the commit record reached the file but (say) the sync
    // failed, leaving it there would let a later recovery resurrect the
    // transaction we are about to roll back.
    Status scrub = wal_->TruncateTo(log_start);
    if (!scrub.ok()) {
      wedged_ = true;
      ODE_LOG(kError) << "commit " << txn << " failed (" << logged.ToString()
                      << ") and the log scrub also failed ("
                      << scrub.ToString() << "); engine wedged";
    } else {
      ODE_LOG(kWarn) << "commit " << txn << " failed, rolled back: "
                        << logged.ToString();
    }
    Status rollback = RollbackActiveTxn();
    if (!rollback.ok()) {
      ODE_LOG(kError) << "rollback after failed commit " << txn
                      << " failed: " << rollback.ToString();
    }
    return logged;
  }
  // The commit record is durable: the transaction has committed, and from
  // here on nothing may turn that into an error (the caller would wrongly
  // conclude it aborted). Pages become write-back eligible; maintenance
  // failures (shrink, checkpoint) are logged — recovery can always redo the
  // work from the log.
  for (PageId id : txn_dirty_) {
    BufferPool::Frame* frame = nullptr;
    Status s = pool_->Fetch(id, &frame);
    if (!s.ok()) continue;  // Unreachable: txn pages are cache-resident.
    frame->flushable = true;
    pool_->Unpin(frame);
  }
  txn_dirty_.clear();
  undo_.clear();
  active_txn_ = 0;
  stats_.txns_committed++;
  m_txn_commits_->Add();
  Status maintenance = pool_->ShrinkToCapacity();
  if (maintenance.ok() && wal_->size_bytes() >= options_.checkpoint_wal_bytes) {
    maintenance = Checkpoint();
  }
  if (!maintenance.ok()) {
    ODE_LOG(kWarn) << "post-commit maintenance failed (txn " << txn
                   << " is committed): " << maintenance.ToString();
  }
  return Status::OK();
}

Status StorageEngine::AbortTxn(TxnId txn) {
  if (txn == 0 || txn != active_txn_) {
    return Status::InvalidArgument("AbortTxn: not the active transaction");
  }
  return RollbackActiveTxn();
}

Status StorageEngine::RollbackActiveTxn() {
  Status first_error;
  for (PageId id : txn_dirty_) {
    auto it = undo_.find(id);
    assert(it != undo_.end());
    BufferPool::Frame* frame = nullptr;
    Status s = pool_->Fetch(id, &frame);
    if (!s.ok()) {
      // Keep rolling back the remaining pages; report the first failure.
      if (first_error.ok()) first_error = s;
      continue;
    }
    memcpy(frame->data.get(), it->second.image.get(), kPageSize);
    frame->dirty = it->second.was_dirty;
    frame->flushable = true;
    pool_->Unpin(frame);
  }
  txn_dirty_.clear();
  undo_.clear();
  active_txn_ = 0;
  stats_.txns_aborted++;
  m_txn_aborts_->Add();
  Status shrink = pool_->ShrinkToCapacity();
  return first_error.ok() ? shrink : first_error;
}

Status StorageEngine::GetPageRead(PageId id, PageHandle* handle) {
  BufferPool::Frame* frame = nullptr;
  ODE_RETURN_IF_ERROR(pool_->Fetch(id, &frame));
  *handle = PageHandle(pool_.get(), frame);
  return Status::OK();
}

Status StorageEngine::GetPageWrite(PageId id, PageHandle* handle) {
  if (active_txn_ == 0) {
    return Status::InvalidArgument("page write outside a transaction");
  }
  BufferPool::Frame* frame = nullptr;
  ODE_RETURN_IF_ERROR(pool_->Fetch(id, &frame));
  if (txn_dirty_.insert(id).second) {
    UndoEntry entry;
    entry.image = std::make_unique<char[]>(kPageSize);
    memcpy(entry.image.get(), frame->data.get(), kPageSize);
    entry.was_dirty = frame->dirty;
    undo_.emplace(id, std::move(entry));
  }
  frame->dirty = true;
  frame->flushable = false;  // No-steal until commit.
  *handle = PageHandle(pool_.get(), frame);
  return Status::OK();
}

Status StorageEngine::AllocPage(PageId* id, PageHandle* handle) {
  if (active_txn_ == 0) {
    return Status::InvalidArgument("page allocation outside a transaction");
  }
  ODE_ASSIGN_OR_RETURN(uint32_t free_head,
                       ReadSuperU32(SuperblockLayout::kFreeListOffset));
  PageId page;
  if (free_head != kInvalidPageId) {
    page = free_head;
    // Pop: head = page.next (stored in the free page's first 4 bytes).
    PageHandle freed;
    ODE_RETURN_IF_ERROR(GetPageWrite(page, &freed));
    const PageId next = DecodeFixed32(freed.data());
    ODE_RETURN_IF_ERROR(WriteSuperU32(SuperblockLayout::kFreeListOffset, next));
    memset(freed.mutable_data(), 0, kPageSize);
    *id = page;
    *handle = std::move(freed);
    stats_.pages_allocated++;
    m_pages_allocated_->Add();
    return Status::OK();
  }
  // Extend the file.
  ODE_ASSIGN_OR_RETURN(uint32_t page_count,
                       ReadSuperU32(SuperblockLayout::kPageCountOffset));
  page = page_count;
  ODE_RETURN_IF_ERROR(
      WriteSuperU32(SuperblockLayout::kPageCountOffset, page_count + 1));
  PageHandle fresh;
  ODE_RETURN_IF_ERROR(GetPageWrite(page, &fresh));
  memset(fresh.mutable_data(), 0, kPageSize);
  *id = page;
  *handle = std::move(fresh);
  stats_.pages_allocated++;
  m_pages_allocated_->Add();
  return Status::OK();
}

Status StorageEngine::FreePage(PageId id) {
  if (active_txn_ == 0) {
    return Status::InvalidArgument("page free outside a transaction");
  }
  if (id == kSuperblockPageId || id == kInvalidPageId) {
    return Status::InvalidArgument("cannot free page " + std::to_string(id));
  }
  ODE_ASSIGN_OR_RETURN(uint32_t free_head,
                       ReadSuperU32(SuperblockLayout::kFreeListOffset));
  PageHandle handle;
  ODE_RETURN_IF_ERROR(GetPageWrite(id, &handle));
  memset(handle.mutable_data(), 0, kPageSize);
  EncodeFixed32(handle.mutable_data(), free_head);
  ODE_RETURN_IF_ERROR(WriteSuperU32(SuperblockLayout::kFreeListOffset, id));
  stats_.pages_freed++;
  m_pages_freed_->Add();
  return Status::OK();
}

Result<uint32_t> StorageEngine::ReadSuperU32(uint32_t offset) {
  PageHandle handle;
  ODE_RETURN_IF_ERROR(GetPageRead(kSuperblockPageId, &handle));
  return DecodeFixed32(handle.data() + offset);
}

Result<uint64_t> StorageEngine::ReadSuperU64(uint32_t offset) {
  PageHandle handle;
  ODE_RETURN_IF_ERROR(GetPageRead(kSuperblockPageId, &handle));
  return DecodeFixed64(handle.data() + offset);
}

Status StorageEngine::WriteSuperU32(uint32_t offset, uint32_t value) {
  PageHandle handle;
  ODE_RETURN_IF_ERROR(GetPageWrite(kSuperblockPageId, &handle));
  EncodeFixed32(handle.mutable_data() + offset, value);
  return Status::OK();
}

Status StorageEngine::WriteSuperU64(uint32_t offset, uint64_t value) {
  PageHandle handle;
  ODE_RETURN_IF_ERROR(GetPageWrite(kSuperblockPageId, &handle));
  EncodeFixed64(handle.mutable_data() + offset, value);
  return Status::OK();
}

Result<uint32_t> StorageEngine::Vacuum() {
  if (active_txn_ != 0) {
    return Status::Busy("cannot vacuum inside a transaction");
  }
  // Collect the free list.
  std::vector<PageId> free_pages;
  {
    ODE_ASSIGN_OR_RETURN(uint32_t head,
                         ReadSuperU32(SuperblockLayout::kFreeListOffset));
    PageId page = head;
    while (page != kInvalidPageId) {
      free_pages.push_back(page);
      if (free_pages.size() > (1u << 26)) {
        return Status::Corruption("free list cycle during vacuum");
      }
      PageHandle handle;
      ODE_RETURN_IF_ERROR(GetPageRead(page, &handle));
      page = DecodeFixed32(handle.data());
    }
  }
  ODE_ASSIGN_OR_RETURN(uint32_t page_count,
                       ReadSuperU32(SuperblockLayout::kPageCountOffset));
  // Find the maximal free tail.
  std::set<PageId> free_set(free_pages.begin(), free_pages.end());
  uint32_t new_count = page_count;
  while (new_count > 1 && free_set.count(new_count - 1) > 0) {
    new_count--;
  }
  const uint32_t released = page_count - new_count;
  if (released == 0) return 0u;

  // Rebuild the free list without the dropped tail, inside a transaction.
  ODE_ASSIGN_OR_RETURN(TxnId txn, BeginTxn());
  Status status = [&]() -> Status {
    PageId head = kInvalidPageId;
    for (auto it = free_pages.rbegin(); it != free_pages.rend(); ++it) {
      if (*it >= new_count) continue;
      PageHandle handle;
      ODE_RETURN_IF_ERROR(GetPageWrite(*it, &handle));
      memset(handle.mutable_data(), 0, kPageSize);
      EncodeFixed32(handle.mutable_data(), head);
      head = *it;
    }
    ODE_RETURN_IF_ERROR(WriteSuperU32(SuperblockLayout::kFreeListOffset, head));
    ODE_RETURN_IF_ERROR(
        WriteSuperU32(SuperblockLayout::kPageCountOffset, new_count));
    return Status::OK();
  }();
  if (!status.ok()) {
    ODE_RETURN_IF_ERROR(AbortTxn(txn));
    return status;
  }
  ODE_RETURN_IF_ERROR(CommitTxn(txn));
  // Metadata is durable; the dropped tail is unreferenced. Make sure no
  // stale frames survive, flush, then shrink the file. (A crash between
  // commit and truncate just leaves a harmless oversized file.)
  for (PageId p = new_count; p < page_count; p++) {
    pool_->Evict(p);
  }
  ODE_RETURN_IF_ERROR(Checkpoint());
  ODE_RETURN_IF_ERROR(pager_->TruncateToPages(new_count));
  ODE_RETURN_IF_ERROR(pager_->Sync());
  return released;
}

Status StorageEngine::Checkpoint() {
  if (active_txn_ != 0) {
    return Status::Busy("cannot checkpoint inside a transaction");
  }
  ODE_RETURN_IF_ERROR(pool_->FlushAll());
  ODE_RETURN_IF_ERROR(pager_->Sync());
  ODE_RETURN_IF_ERROR(wal_->Reset());
  stats_.checkpoints++;
  m_checkpoints_->Add();
  // An empty log can no longer resurrect anything: a wedge (failed commit
  // whose partial records could not be scrubbed) is resolved.
  wedged_ = false;
  return Status::OK();
}

}  // namespace ode
