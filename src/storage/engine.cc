#include "storage/engine.h"

#include <cassert>
#include <cstring>
#include <set>
#include <vector>

#include "storage/recovery.h"
#include "util/coding.h"
#include "util/logging.h"

namespace ode {

namespace {

/// Engine-instance generations. Globally unique and monotone so a reopened
/// engine landing at a recycled heap address can never match a thread-local
/// binding left behind by its predecessor.
std::atomic<uint64_t> g_engine_gen{1};

}  // namespace

// --- Thread-local transaction binding --------------------------------------
//
// Each thread keeps a tiny map: engine generation -> its TxnState on that
// engine. A map (rather than a single slot) so one thread can interleave
// transactions on several engines (e.g. backup copying between databases).
// Entries are erased on transaction end; an engine that dies with a live
// entry (SimulateCrash) leaves a stale pair whose generation is never issued
// again, so it can never be looked up.

using TlsTxnMap = std::unordered_map<uint64_t, void*>;

static TlsTxnMap& TlsTxns() {
  static thread_local TlsTxnMap map;
  return map;
}

StorageEngine::TxnState* StorageEngine::CurrentTxn() const {
  TlsTxnMap& map = TlsTxns();
  auto it = map.find(gen_);
  if (it == map.end()) return nullptr;
  return static_cast<TxnState*>(it->second);
}

void StorageEngine::BindTls(TxnState* txn) const { TlsTxns()[gen_] = txn; }

void StorageEngine::UnbindTls() const { TlsTxns().erase(gen_); }

// ---------------------------------------------------------------------------

StorageEngine::StorageEngine(std::string path, std::unique_ptr<Pager> pager,
                             std::unique_ptr<Wal> wal,
                             const EngineOptions& options)
    : path_(std::move(path)),
      pager_(std::move(pager)),
      wal_(std::move(wal)),
      pool_(new BufferPool(pager_.get(), options.buffer_pool_pages,
                           options.metrics)),
      locks_(new concur::LockManager(
          options.metrics != nullptr ? options.metrics
                                     : &MetricsRegistry::Global(),
          options.lock_wait_timeout_ms)),
      options_(options),
      gen_(g_engine_gen.fetch_add(1, std::memory_order_relaxed)),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : &MetricsRegistry::Global()) {
  m_txn_begins_ = metrics_->GetCounter("storage.engine.txn_begins");
  m_txn_commits_ = metrics_->GetCounter("storage.engine.txn_commits");
  m_txn_aborts_ = metrics_->GetCounter("storage.engine.txn_aborts");
  m_commit_failures_ = metrics_->GetCounter("storage.engine.commit_failures");
  m_checkpoints_ = metrics_->GetCounter("storage.engine.checkpoints");
  m_pages_allocated_ = metrics_->GetCounter("storage.engine.pages_allocated");
  m_pages_freed_ = metrics_->GetCounter("storage.engine.pages_freed");
  m_active_txns_ = metrics_->GetGauge("storage.engine.active_txns");
}

StorageEngine::~StorageEngine() {
  if (!closed_) {
    Status s = Close();
    if (!s.ok()) {
      ODE_LOG(kError) << "close " << path_ << " failed: " << s.ToString();
    }
  }
}

Status StorageEngine::Open(const std::string& path,
                           const EngineOptions& options,
                           std::unique_ptr<StorageEngine>* out) {
  Env* env = options.env != nullptr ? options.env : Env::Default();
  std::unique_ptr<Pager> pager;
  bool created = false;
  ODE_RETURN_IF_ERROR(
      Pager::Open(env, path, &pager, &created, options.metrics));

  const std::string wal_path = path + ".wal";
  std::unique_ptr<Wal> wal;
  ODE_RETURN_IF_ERROR(
      Wal::Open(env, wal_path, options.wal_sync, &wal, options.metrics));

  if (wal->size_bytes() > 0) {
    RecoveryStats recovery_stats;
    ODE_RETURN_IF_ERROR(RunRecovery(pager.get(), wal.get(), &recovery_stats));
    ODE_LOG(kInfo) << "recovered " << path << ": "
                   << recovery_stats.committed_txns << " txns, "
                   << recovery_stats.pages_replayed << " page images"
                   << (recovery_stats.torn_tail_records > 0
                           ? " (torn tail discarded)"
                           : "");
  }

  std::unique_ptr<StorageEngine> engine(
      new StorageEngine(path, std::move(pager), std::move(wal), options));
  // Seed the transaction-id counter from the superblock. (The counter is
  // persisted at checkpoints and rides along in any committed superblock
  // image; after a crash, ids issued by transactions since the last
  // checkpointed value may be reissued — benign for redo correctness, ids
  // only group log records and replay is in log order.)
  ODE_ASSIGN_OR_RETURN(uint64_t next_txn, engine->ReadSuperU64(
                                              SuperblockLayout::kNextTxnIdOffset));
  engine->next_txn_id_.store(next_txn < 1 ? 1 : next_txn,
                             std::memory_order_relaxed);
  *out = std::move(engine);
  return Status::OK();
}

Status StorageEngine::Close() {
  if (closed_) return Status::OK();
  // Abort every still-active transaction, including ones leaked by other
  // threads (their thread-local bindings go stale; the generation check
  // keeps them from ever resolving again).
  std::vector<std::unique_ptr<TxnState>> leaked;
  {
    MutexLock lock(txn_mu_);
    for (auto& [id, txn] : txns_) leaked.push_back(std::move(txn));
    txns_.clear();
    m_active_txns_->Set(0);
  }
  for (auto& txn : leaked) {
    locks_->ReleaseAll(txn->id);
    stats_.txns_aborted.fetch_add(1, std::memory_order_relaxed);
    m_txn_aborts_->Add();
  }
  UnbindTls();
  Status s = Checkpoint();
  closed_ = true;
  return s;
}

Result<TxnId> StorageEngine::BeginTxn() {
  if (CurrentTxn() != nullptr) {
    return Status::Busy("a transaction is already active");
  }
  if (wedged_.load(std::memory_order_acquire)) {
    return Status::IOError(
        "engine wedged: a failed commit could not scrub the log; "
        "checkpoint (or reopen) before starting new transactions");
  }
  auto txn = std::make_unique<TxnState>();
  TxnState* raw = txn.get();
  {
    MutexLock lock(txn_mu_);
    if (vacuum_active_ && vacuum_owner_ != std::this_thread::get_id()) {
      return Status::Busy("vacuum in progress");
    }
    txn->id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
    txn->owner = std::this_thread::get_id();
    txns_.emplace(txn->id, std::move(txn));
    m_active_txns_->Set(static_cast<int64_t>(txns_.size()));
  }
  BindTls(raw);
  m_txn_begins_->Add();
  return raw->id;
}

Status StorageEngine::EnsureWriterToken(TxnState* txn) {
  if (txn->has_writer_token) return Status::OK();
  ODE_RETURN_IF_ERROR(locks_->Acquire(txn->id, concur::kWriterResource,
                                      concur::LockMode::kExclusive));
  txn->has_writer_token = true;
  return Status::OK();
}

void StorageEngine::FinishTxn(TxnState* txn, bool committed) {
  const TxnId id = txn->id;
  UnbindTls();
  {
    MutexLock lock(txn_mu_);
    txns_.erase(id);  // destroys *txn
    m_active_txns_->Set(static_cast<int64_t>(txns_.size()));
  }
  if (committed) {
    stats_.txns_committed.fetch_add(1, std::memory_order_relaxed);
    m_txn_commits_->Add();
  } else {
    stats_.txns_aborted.fetch_add(1, std::memory_order_relaxed);
    m_txn_aborts_->Add();
  }
}

Status StorageEngine::CommitTxn(TxnId txn, bool release_locks) {
  TxnState* state = CurrentTxn();
  if (txn == 0 || state == nullptr || state->id != txn) {
    return Status::InvalidArgument("CommitTxn: not the active transaction");
  }
  if (state->shadows.empty()) {
    // Read-only: nothing to log or publish.
    FinishTxn(state, /*committed=*/true);
    if (release_locks) locks_->ReleaseAll(txn);
    return Status::OK();
  }
  assert(state->has_writer_token);

  // Ride the advanced id counter along in the superblock image if this
  // transaction touched it anyway (free persistence across crashes).
  auto super_it = state->shadows.find(kSuperblockPageId);
  if (super_it != state->shadows.end()) {
    EncodeFixed64(super_it->second.get() + SuperblockLayout::kNextTxnIdOffset,
                  next_txn_id_.load(std::memory_order_relaxed));
  }

  // Log after-images in page order, then the commit record. If any append or
  // the commit sync fails, the commit degrades to an abort: scrub the partial
  // records off the log, drop the shadows, and report the error, but leave
  // the engine usable.
  const uint64_t log_start = wal_->size_bytes();
  Status logged = [&]() -> Status {
    for (const auto& [id, image] : state->shadows) {
      ODE_RETURN_IF_ERROR(wal_->AppendPageImage(txn, id, image.get()));
    }
    return wal_->AppendCommit(txn);
  }();
  if (!logged.ok()) {
    stats_.commit_failures.fetch_add(1, std::memory_order_relaxed);
    m_commit_failures_->Add();
    // Scrub first: if the commit record reached the file but (say) the sync
    // failed, leaving it there would let a later recovery resurrect the
    // transaction we are about to roll back.
    Status scrub = wal_->TruncateTo(log_start);
    if (!scrub.ok()) {
      wedged_.store(true, std::memory_order_release);
      ODE_LOG(kError) << "commit " << txn << " failed (" << logged.ToString()
                      << ") and the log scrub also failed ("
                      << scrub.ToString() << "); engine wedged";
    } else {
      ODE_LOG(kWarn) << "commit " << txn << " failed, rolled back: "
                     << logged.ToString();
    }
    FinishTxn(state, /*committed=*/false);
    if (release_locks) locks_->ReleaseAll(txn);
    return logged;
  }

  // The commit record is durable: the transaction has committed, and from
  // here on nothing may turn that into an error (the caller would wrongly
  // conclude it aborted). Publish the shadows as the new committed images;
  // maintenance failures (shrink, checkpoint) are logged — recovery can
  // always redo the work from the log.
  for (const auto& [id, image] : state->shadows) {
    pool_->Install(id, image.get());
  }
  FinishTxn(state, /*committed=*/true);

  Status maintenance = pool_->ShrinkToCapacity();
  if (maintenance.ok()) {
    // Auto-checkpoint while we still hold the writer token (no concurrent
    // WAL appends possible) and, briefly, txn_mu_ (no new transactions).
    // Only when the engine is otherwise quiet — a concurrent reader is
    // harmless for correctness but we keep the historical "no transactions
    // during checkpoint" discipline.
    MutexLock lock(txn_mu_);
    if (txns_.empty() &&
        wal_->size_bytes() >= options_.checkpoint_wal_bytes) {
      maintenance = CheckpointLocked();
    }
  }
  if (!maintenance.ok()) {
    ODE_LOG(kWarn) << "post-commit maintenance failed (txn " << txn
                   << " is committed): " << maintenance.ToString();
  }
  if (release_locks) locks_->ReleaseAll(txn);
  return Status::OK();
}

Status StorageEngine::AbortTxn(TxnId txn, bool release_locks) {
  TxnState* state = CurrentTxn();
  if (txn == 0 || state == nullptr || state->id != txn) {
    return Status::InvalidArgument("AbortTxn: not the active transaction");
  }
  // Shadow paging makes abort trivial: the pool never saw this
  // transaction's writes, so dropping the shadows is the whole rollback.
  FinishTxn(state, /*committed=*/false);
  if (release_locks) locks_->ReleaseAll(txn);
  return Status::OK();
}

void StorageEngine::ReleaseTxnLocks(TxnId txn) { locks_->ReleaseAll(txn); }

bool StorageEngine::in_txn() const { return CurrentTxn() != nullptr; }

TxnId StorageEngine::active_txn() const {
  TxnState* state = CurrentTxn();
  return state != nullptr ? state->id : 0;
}

size_t StorageEngine::active_txn_count() const {
  MutexLock lock(txn_mu_);
  return txns_.size();
}

Status StorageEngine::GetPageRead(PageId id, PageHandle* handle) {
  TxnState* state = CurrentTxn();
  if (state != nullptr) {
    auto it = state->shadows.find(id);
    if (it != state->shadows.end()) {
      *handle = PageHandle::Borrowed(id, it->second.get());
      return Status::OK();
    }
  }
  return pool_->FetchHandle(id, handle);
}

Status StorageEngine::GetPageWrite(PageId id, PageHandle* handle) {
  TxnState* state = CurrentTxn();
  if (state == nullptr) {
    return Status::InvalidArgument("page write outside a transaction");
  }
  ODE_RETURN_IF_ERROR(EnsureWriterToken(state));
  auto it = state->shadows.find(id);
  if (it == state->shadows.end()) {
    // First touch: seed a private shadow from the committed image.
    auto image = std::make_unique<char[]>(kPageSize);
    PageHandle committed;
    ODE_RETURN_IF_ERROR(pool_->FetchHandle(id, &committed));
    memcpy(image.get(), committed.data(), kPageSize);
    it = state->shadows.emplace(id, std::move(image)).first;
  }
  *handle = PageHandle::Borrowed(id, it->second.get());
  return Status::OK();
}

Status StorageEngine::AllocPage(PageId* id, PageHandle* handle) {
  if (CurrentTxn() == nullptr) {
    return Status::InvalidArgument("page allocation outside a transaction");
  }
  ODE_ASSIGN_OR_RETURN(uint32_t free_head,
                       ReadSuperU32(SuperblockLayout::kFreeListOffset));
  PageId page;
  if (free_head != kInvalidPageId) {
    page = free_head;
    // Pop: head = page.next (stored in the free page's first 4 bytes).
    PageHandle freed;
    ODE_RETURN_IF_ERROR(GetPageWrite(page, &freed));
    const PageId next = DecodeFixed32(freed.data());
    ODE_RETURN_IF_ERROR(WriteSuperU32(SuperblockLayout::kFreeListOffset, next));
    memset(freed.mutable_data(), 0, kPageSize);
    *id = page;
    *handle = std::move(freed);
    stats_.pages_allocated.fetch_add(1, std::memory_order_relaxed);
    m_pages_allocated_->Add();
    return Status::OK();
  }
  // Extend the file.
  ODE_ASSIGN_OR_RETURN(uint32_t page_count,
                       ReadSuperU32(SuperblockLayout::kPageCountOffset));
  page = page_count;
  ODE_RETURN_IF_ERROR(
      WriteSuperU32(SuperblockLayout::kPageCountOffset, page_count + 1));
  PageHandle fresh;
  ODE_RETURN_IF_ERROR(GetPageWrite(page, &fresh));
  memset(fresh.mutable_data(), 0, kPageSize);
  *id = page;
  *handle = std::move(fresh);
  stats_.pages_allocated.fetch_add(1, std::memory_order_relaxed);
  m_pages_allocated_->Add();
  return Status::OK();
}

Status StorageEngine::FreePage(PageId id) {
  if (CurrentTxn() == nullptr) {
    return Status::InvalidArgument("page free outside a transaction");
  }
  if (id == kSuperblockPageId || id == kInvalidPageId) {
    return Status::InvalidArgument("cannot free page " + std::to_string(id));
  }
  ODE_ASSIGN_OR_RETURN(uint32_t free_head,
                       ReadSuperU32(SuperblockLayout::kFreeListOffset));
  PageHandle handle;
  ODE_RETURN_IF_ERROR(GetPageWrite(id, &handle));
  memset(handle.mutable_data(), 0, kPageSize);
  EncodeFixed32(handle.mutable_data(), free_head);
  ODE_RETURN_IF_ERROR(WriteSuperU32(SuperblockLayout::kFreeListOffset, id));
  stats_.pages_freed.fetch_add(1, std::memory_order_relaxed);
  m_pages_freed_->Add();
  return Status::OK();
}

Result<uint32_t> StorageEngine::ReadSuperU32(uint32_t offset) {
  PageHandle handle;
  ODE_RETURN_IF_ERROR(GetPageRead(kSuperblockPageId, &handle));
  return DecodeFixed32(handle.data() + offset);
}

Result<uint64_t> StorageEngine::ReadSuperU64(uint32_t offset) {
  PageHandle handle;
  ODE_RETURN_IF_ERROR(GetPageRead(kSuperblockPageId, &handle));
  return DecodeFixed64(handle.data() + offset);
}

Status StorageEngine::WriteSuperU32(uint32_t offset, uint32_t value) {
  PageHandle handle;
  ODE_RETURN_IF_ERROR(GetPageWrite(kSuperblockPageId, &handle));
  EncodeFixed32(handle.mutable_data() + offset, value);
  return Status::OK();
}

Status StorageEngine::WriteSuperU64(uint32_t offset, uint64_t value) {
  PageHandle handle;
  ODE_RETURN_IF_ERROR(GetPageWrite(kSuperblockPageId, &handle));
  EncodeFixed64(handle.mutable_data() + offset, value);
  return Status::OK();
}

Result<uint32_t> StorageEngine::Vacuum() {
  {
    MutexLock lock(txn_mu_);
    if (!txns_.empty()) {
      return Status::Busy("cannot vacuum inside a transaction");
    }
    if (vacuum_active_) {
      return Status::Busy("vacuum in progress");
    }
    vacuum_active_ = true;
    vacuum_owner_ = std::this_thread::get_id();
  }
  // From here on, only this thread can begin transactions (BeginTxn's
  // vacuum gate); clear the gate on every exit.
  struct Ungate {
    StorageEngine* e;
    ~Ungate() {
      MutexLock lock(e->txn_mu_);
      e->vacuum_active_ = false;
    }
  } ungate{this};

  // Collect the free list.
  std::vector<PageId> free_pages;
  {
    ODE_ASSIGN_OR_RETURN(uint32_t head,
                         ReadSuperU32(SuperblockLayout::kFreeListOffset));
    PageId page = head;
    while (page != kInvalidPageId) {
      free_pages.push_back(page);
      if (free_pages.size() > (1u << 26)) {
        return Status::Corruption("free list cycle during vacuum");
      }
      PageHandle handle;
      ODE_RETURN_IF_ERROR(GetPageRead(page, &handle));
      page = DecodeFixed32(handle.data());
    }
  }
  ODE_ASSIGN_OR_RETURN(uint32_t page_count,
                       ReadSuperU32(SuperblockLayout::kPageCountOffset));
  // Find the maximal free tail.
  std::set<PageId> free_set(free_pages.begin(), free_pages.end());
  uint32_t new_count = page_count;
  while (new_count > 1 && free_set.count(new_count - 1) > 0) {
    new_count--;
  }
  const uint32_t released = page_count - new_count;
  if (released == 0) return 0u;

  // Rebuild the free list without the dropped tail, inside a transaction.
  ODE_ASSIGN_OR_RETURN(TxnId txn, BeginTxn());
  Status status = [&]() -> Status {
    PageId head = kInvalidPageId;
    for (auto it = free_pages.rbegin(); it != free_pages.rend(); ++it) {
      if (*it >= new_count) continue;
      PageHandle handle;
      ODE_RETURN_IF_ERROR(GetPageWrite(*it, &handle));
      memset(handle.mutable_data(), 0, kPageSize);
      EncodeFixed32(handle.mutable_data(), head);
      head = *it;
    }
    ODE_RETURN_IF_ERROR(WriteSuperU32(SuperblockLayout::kFreeListOffset, head));
    ODE_RETURN_IF_ERROR(
        WriteSuperU32(SuperblockLayout::kPageCountOffset, new_count));
    return Status::OK();
  }();
  if (!status.ok()) {
    ODE_RETURN_IF_ERROR(AbortTxn(txn));
    return status;
  }
  ODE_RETURN_IF_ERROR(CommitTxn(txn));
  // Metadata is durable; the dropped tail is unreferenced. Make sure no
  // stale frames survive, flush, then shrink the file. (A crash between
  // commit and truncate just leaves a harmless oversized file.)
  for (PageId p = new_count; p < page_count; p++) {
    pool_->Evict(p);
  }
  ODE_RETURN_IF_ERROR(Checkpoint());
  ODE_RETURN_IF_ERROR(pager_->TruncateToPages(new_count));
  ODE_RETURN_IF_ERROR(pager_->Sync());
  return released;
}

Status StorageEngine::Checkpoint() {
  MutexLock lock(txn_mu_);
  if (!txns_.empty()) {
    return Status::Busy("cannot checkpoint inside a transaction");
  }
  return CheckpointLocked();
}

Status StorageEngine::CheckpointLocked() {
  // Persist the id counter: stamp it into the committed superblock image so
  // ids keep advancing across a clean close/reopen.
  {
    PageHandle super;
    ODE_RETURN_IF_ERROR(pool_->FetchHandle(kSuperblockPageId, &super));
    const uint64_t next = next_txn_id_.load(std::memory_order_relaxed);
    if (DecodeFixed64(super.data() + SuperblockLayout::kNextTxnIdOffset) !=
        next) {
      char image[kPageSize];
      memcpy(image, super.data(), kPageSize);
      EncodeFixed64(image + SuperblockLayout::kNextTxnIdOffset, next);
      pool_->Install(kSuperblockPageId, image);
    }
  }
  ODE_RETURN_IF_ERROR(pool_->FlushAll());
  ODE_RETURN_IF_ERROR(pager_->Sync());
  ODE_RETURN_IF_ERROR(wal_->Reset());
  stats_.checkpoints.fetch_add(1, std::memory_order_relaxed);
  m_checkpoints_->Add();
  // An empty log can no longer resurrect anything: a wedge (failed commit
  // whose partial records could not be scrubbed) is resolved.
  wedged_.store(false, std::memory_order_release);
  return Status::OK();
}

}  // namespace ode
