#include "storage/buffer_pool.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "util/logging.h"

namespace ode {

namespace {

std::shared_ptr<char[]> NewPageBuffer() {
  return std::shared_ptr<char[]>(new char[kPageSize]());
}

/// Largest power of two <= max(1, n).
size_t FloorPow2(size_t n) {
  size_t p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

}  // namespace

BufferPool::BufferPool(Pager* pager, size_t capacity_pages,
                       MetricsRegistry* metrics, size_t shards)
    : pager_(pager), capacity_(capacity_pages == 0 ? 1 : capacity_pages) {
  // Shard count: a power of two, never more than the capacity (a shard that
  // could cache nothing would turn every access to it into a miss+grow).
  size_t n = FloorPow2(shards == 0 ? 1 : shards);
  if (n > capacity_) n = FloorPow2(capacity_);
  if (n > 64) n = 64;
  unsigned log2 = 0;
  for (size_t p = n; p > 1; p /= 2) log2++;
  shard_shift_ = 64 - log2;  // n==1 => shift 64; ShardOf special-cases it.
  shards_.reserve(n);
  // Distribute capacity exactly: base slice per shard plus one extra for the
  // first (capacity mod n) shards, so the sum equals capacity_ and tests
  // that bound total residency keep holding for small pools.
  const size_t base = capacity_ / n;
  const size_t extra = capacity_ % n;
  for (size_t i = 0; i < n; i++) {
    auto s = std::make_unique<Shard>();
    s->capacity = base + (i < extra ? 1 : 0);
    shards_.push_back(std::move(s));
  }
  MetricsRegistry& m =
      metrics != nullptr ? *metrics : MetricsRegistry::Global();
  m_hits_ = m.GetCounter("storage.pool.hits");
  m_misses_ = m.GetCounter("storage.pool.misses");
  m_evictions_ = m.GetCounter("storage.pool.evictions");
  m_flushes_ = m.GetCounter("storage.pool.flushes");
  m_grows_ = m.GetCounter("storage.pool.grows");
  m_read_errors_ = m.GetCounter("storage.pool.read_errors");
  m_prefetch_loads_ = m.GetCounter("storage.pool.prefetch_loads");
  m_prefetch_hits_ = m.GetCounter("storage.pool.prefetch_hits");
  m_frames_ = m.GetGauge("storage.pool.frames");
}

BufferPool::~BufferPool() {
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    m_frames_->Sub(static_cast<int64_t>(shard->frames.size()));
  }
}

Status BufferPool::FetchLocked(Shard& shard, PageId id, Frame** frame) {
  auto it = shard.frames.find(id);
  if (it != shard.frames.end()) {
    stats_.hits.fetch_add(1, std::memory_order_relaxed);
    m_hits_->Add();
    Frame* f = it->second.get();
    if (f->prefetched) {
      // First demand touch of a read-ahead frame: the prefetch paid off.
      f->prefetched = false;
      stats_.prefetch_hits.fetch_add(1, std::memory_order_relaxed);
      m_prefetch_hits_->Add();
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, f->lru_pos);  // to MRU
    *frame = f;
    return Status::OK();
  }
  stats_.misses.fetch_add(1, std::memory_order_relaxed);
  m_misses_->Add();
  ODE_RETURN_IF_ERROR(EnsureRoom(shard));
  auto f = std::make_unique<Frame>();
  f->id = id;
  f->data = NewPageBuffer();
  // Read before the frame is linked into frames/lru: a failed read must
  // not leave a half-initialized frame behind.
  Status read = pager_->ReadPage(id, f->data.get());
  if (!read.ok()) {
    stats_.read_errors.fetch_add(1, std::memory_order_relaxed);
    m_read_errors_->Add();
    return read;
  }
  shard.lru.push_front(id);
  f->lru_pos = shard.lru.begin();
  Frame* raw = f.get();
  shard.frames.emplace(id, std::move(f));
  m_frames_->Add();
  *frame = raw;
  return Status::OK();
}

Status BufferPool::FetchHandle(PageId id, PageHandle* handle) {
  Shard& shard = ShardOf(id);
  MutexLock lock(shard.mu);
  Frame* f = nullptr;
  ODE_RETURN_IF_ERROR(FetchLocked(shard, id, &f));
  PageHandle h;
  h.owner_ = f->data;  // shared: survives Install()'s buffer swap / eviction
  h.data_ = h.owner_.get();
  h.id_ = id;
  *handle = std::move(h);
  return Status::OK();
}

void BufferPool::Install(PageId id, const char* data) {
  Shard& shard = ShardOf(id);
  MutexLock lock(shard.mu);
  auto it = shard.frames.find(id);
  Frame* f;
  if (it != shard.frames.end()) {
    f = it->second.get();
    shard.lru.splice(shard.lru.begin(), shard.lru, f->lru_pos);
  } else {
    // The commit behind this Install is already durable in the WAL; a full
    // shard grows (EnsureRoom never errors hard for an unpinnable shard,
    // and a flush error during eviction merely grows too — the WAL protects
    // us).
    bool evicted = false;
    if (shard.frames.size() >= shard.capacity) {
      Status s = EvictOne(shard, &evicted);
      if (!s.ok()) {
        ODE_LOG(kWarn) << "pool: eviction flush failed during Install ("
                       << s.ToString() << "); growing instead";
      }
      if (!evicted) {
        stats_.grows.fetch_add(1, std::memory_order_relaxed);
        m_grows_->Add();
      }
    }
    auto owned = std::make_unique<Frame>();
    owned->id = id;
    f = owned.get();
    shard.lru.push_front(id);
    f->lru_pos = shard.lru.begin();
    shard.frames.emplace(id, std::move(owned));
    m_frames_->Add();
  }
  // Fresh buffer rather than memcpy into the old one: outstanding
  // PageHandles keep the old image alive and never see a torn write.
  auto buf = NewPageBuffer();
  std::memcpy(buf.get(), data, kPageSize);
  f->data = std::move(buf);
  f->dirty = true;
}

Status BufferPool::Prefetch(const PageId* ids, size_t count) {
  // Pass 1: drop the ids already resident.
  std::vector<PageId> missing;
  missing.reserve(count);
  for (size_t i = 0; i < count; i++) {
    Shard& shard = ShardOf(ids[i]);
    MutexLock lock(shard.mu);
    if (shard.frames.find(ids[i]) == shard.frames.end()) {
      missing.push_back(ids[i]);
    }
  }
  if (missing.empty()) return Status::OK();
  std::sort(missing.begin(), missing.end());
  missing.erase(std::unique(missing.begin(), missing.end()), missing.end());
  // Pass 2: read each contiguous run with one batched call, outside every
  // shard mutex; pass 3 installs the clean frames.
  size_t i = 0;
  while (i < missing.size()) {
    size_t j = i + 1;
    while (j < missing.size() && missing[j] == missing[j - 1] + 1) j++;
    const uint32_t run = static_cast<uint32_t>(j - i);
    std::vector<std::shared_ptr<char[]>> bufs(run);
    std::vector<char*> raw(run);
    for (uint32_t k = 0; k < run; k++) {
      bufs[k] = NewPageBuffer();
      raw[k] = bufs[k].get();
    }
    Status read = pager_->ReadPages(missing[i], run, raw.data());
    if (!read.ok()) {
      stats_.read_errors.fetch_add(1, std::memory_order_relaxed);
      m_read_errors_->Add();
      return read;
    }
    for (uint32_t k = 0; k < run; k++) {
      const PageId id = missing[i + k];
      Shard& shard = ShardOf(id);
      MutexLock lock(shard.mu);
      if (shard.frames.find(id) != shard.frames.end()) continue;
      Status room = EnsureRoom(shard);
      if (!room.ok()) continue;  // eviction flush failed; demand path retries
      auto f = std::make_unique<Frame>();
      f->id = id;
      f->data = std::move(bufs[k]);
      f->prefetched = true;
      shard.lru.push_front(id);
      f->lru_pos = shard.lru.begin();
      shard.frames.emplace(id, std::move(f));
      m_frames_->Add();
      stats_.prefetch_loads.fetch_add(1, std::memory_order_relaxed);
      m_prefetch_loads_->Add();
    }
    i = j;
  }
  return Status::OK();
}

Status BufferPool::Fetch(PageId id, Frame** frame) {
  Shard& shard = ShardOf(id);
  MutexLock lock(shard.mu);
  Frame* f = nullptr;
  ODE_RETURN_IF_ERROR(FetchLocked(shard, id, &f));
  f->pins++;
  *frame = f;
  return Status::OK();
}

void BufferPool::Unpin(Frame* frame) {
  Shard& shard = ShardOf(frame->id);
  MutexLock lock(shard.mu);
  assert(frame->pins > 0);
  frame->pins--;
}

Status BufferPool::EvictOne(Shard& shard, bool* evicted) {
  *evicted = false;
  // Walk from the cold end; the first evictable frame is the victim.
  for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it) {
    auto found = shard.frames.find(*it);
    assert(found != shard.frames.end());
    Frame* f = found->second.get();
    if (f->pins > 0) continue;
    if (f->dirty) {
      ODE_RETURN_IF_ERROR(FlushFrameLocked(shard, f));
    }
    stats_.evictions.fetch_add(1, std::memory_order_relaxed);
    m_evictions_->Add();
    RemoveFrame(shard, f);
    *evicted = true;
    return Status::OK();
  }
  return Status::OK();
}

void BufferPool::RemoveFrame(Shard& shard, Frame* frame) {
  shard.lru.erase(frame->lru_pos);
  shard.frames.erase(frame->id);
  m_frames_->Sub();
}

Status BufferPool::EnsureRoom(Shard& shard) {
  if (shard.frames.size() < shard.capacity) return Status::OK();
  bool evicted = false;
  ODE_RETURN_IF_ERROR(EvictOne(shard, &evicted));
  if (!evicted) {
    // Everything pinned: grow rather than fail.
    stats_.grows.fetch_add(1, std::memory_order_relaxed);
    m_grows_->Add();
  }
  return Status::OK();
}

Status BufferPool::ShrinkToCapacity() {
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    while (shard->frames.size() > shard->capacity) {
      bool evicted = false;
      ODE_RETURN_IF_ERROR(EvictOne(*shard, &evicted));
      if (!evicted) break;  // Everything pinned: give up for now.
    }
  }
  return Status::OK();
}

Status BufferPool::FlushFrameLocked(Shard& shard, Frame* frame) {
  (void)shard;
  if (!frame->dirty) return Status::OK();
  ODE_RETURN_IF_ERROR(pager_->WritePage(frame->id, frame->data.get()));
  frame->dirty = false;
  stats_.flushes.fetch_add(1, std::memory_order_relaxed);
  m_flushes_->Add();
  return Status::OK();
}

Status BufferPool::FlushAll(size_t* flushed) {
  size_t n = 0;
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    for (auto& [id, f] : shard->frames) {
      if (f->dirty) {
        ODE_RETURN_IF_ERROR(FlushFrameLocked(*shard, f.get()));
        n++;
      }
    }
  }
  if (flushed != nullptr) *flushed = n;
  return Status::OK();
}

void BufferPool::Evict(PageId id) {
  Shard& shard = ShardOf(id);
  MutexLock lock(shard.mu);
  auto it = shard.frames.find(id);
  if (it == shard.frames.end()) return;
  if (it->second->pins > 0 || it->second->dirty) return;
  RemoveFrame(shard, it->second.get());
}

size_t BufferPool::size() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    n += shard->frames.size();
  }
  return n;
}

void BufferPool::ResetStats() {
  stats_.hits.store(0, std::memory_order_relaxed);
  stats_.misses.store(0, std::memory_order_relaxed);
  stats_.evictions.store(0, std::memory_order_relaxed);
  stats_.flushes.store(0, std::memory_order_relaxed);
  stats_.grows.store(0, std::memory_order_relaxed);
  stats_.read_errors.store(0, std::memory_order_relaxed);
  stats_.prefetch_loads.store(0, std::memory_order_relaxed);
  stats_.prefetch_hits.store(0, std::memory_order_relaxed);
}

}  // namespace ode
