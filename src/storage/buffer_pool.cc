#include "storage/buffer_pool.h"

#include <cassert>
#include <cstring>

#include "util/logging.h"

namespace ode {

namespace {

std::shared_ptr<char[]> NewPageBuffer() {
  return std::shared_ptr<char[]>(new char[kPageSize]());
}

}  // namespace

BufferPool::BufferPool(Pager* pager, size_t capacity_pages,
                       MetricsRegistry* metrics)
    : pager_(pager), capacity_(capacity_pages == 0 ? 1 : capacity_pages) {
  MetricsRegistry& m =
      metrics != nullptr ? *metrics : MetricsRegistry::Global();
  m_hits_ = m.GetCounter("storage.pool.hits");
  m_misses_ = m.GetCounter("storage.pool.misses");
  m_evictions_ = m.GetCounter("storage.pool.evictions");
  m_flushes_ = m.GetCounter("storage.pool.flushes");
  m_grows_ = m.GetCounter("storage.pool.grows");
  m_read_errors_ = m.GetCounter("storage.pool.read_errors");
  m_frames_ = m.GetGauge("storage.pool.frames");
}

Status BufferPool::FetchLocked(PageId id, Frame** frame) {
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    stats_.hits.fetch_add(1, std::memory_order_relaxed);
    m_hits_->Add();
    Frame* f = it->second.get();
    lru_.splice(lru_.begin(), lru_, f->lru_pos);  // move to MRU position
    *frame = f;
    return Status::OK();
  }
  stats_.misses.fetch_add(1, std::memory_order_relaxed);
  m_misses_->Add();
  ODE_RETURN_IF_ERROR(EnsureRoom());
  auto f = std::make_unique<Frame>();
  f->id = id;
  f->data = NewPageBuffer();
  // Read before the frame is linked into frames_/lru_: a failed read must
  // not leave a half-initialized frame behind.
  Status read = pager_->ReadPage(id, f->data.get());
  if (!read.ok()) {
    stats_.read_errors.fetch_add(1, std::memory_order_relaxed);
    m_read_errors_->Add();
    return read;
  }
  lru_.push_front(id);
  f->lru_pos = lru_.begin();
  Frame* raw = f.get();
  frames_.emplace(id, std::move(f));
  m_frames_->Set(static_cast<int64_t>(frames_.size()));
  *frame = raw;
  return Status::OK();
}

Status BufferPool::FetchHandle(PageId id, PageHandle* handle) {
  MutexLock lock(mu_);
  Frame* f = nullptr;
  ODE_RETURN_IF_ERROR(FetchLocked(id, &f));
  PageHandle h;
  h.owner_ = f->data;  // shared: survives Install()'s buffer swap / eviction
  h.data_ = h.owner_.get();
  h.id_ = id;
  *handle = std::move(h);
  return Status::OK();
}

void BufferPool::Install(PageId id, const char* data) {
  MutexLock lock(mu_);
  auto it = frames_.find(id);
  Frame* f;
  if (it != frames_.end()) {
    f = it->second.get();
    lru_.splice(lru_.begin(), lru_, f->lru_pos);
  } else {
    // The commit behind this Install is already durable in the WAL; a full
    // pool grows (EnsureRoom never errors hard for an unpinnable pool, and a
    // flush error during eviction merely grows too — the WAL protects us).
    bool evicted = false;
    if (frames_.size() >= capacity_) {
      Status s = EvictOne(&evicted);
      if (!s.ok()) {
        ODE_LOG(kWarn) << "pool: eviction flush failed during Install ("
                       << s.ToString() << "); growing instead";
      }
      if (!evicted) {
        stats_.grows.fetch_add(1, std::memory_order_relaxed);
        m_grows_->Add();
      }
    }
    auto owned = std::make_unique<Frame>();
    owned->id = id;
    f = owned.get();
    lru_.push_front(id);
    f->lru_pos = lru_.begin();
    frames_.emplace(id, std::move(owned));
    m_frames_->Set(static_cast<int64_t>(frames_.size()));
  }
  // Fresh buffer rather than memcpy into the old one: outstanding
  // PageHandles keep the old image alive and never see a torn write.
  auto buf = NewPageBuffer();
  std::memcpy(buf.get(), data, kPageSize);
  f->data = std::move(buf);
  f->dirty = true;
}

Status BufferPool::Fetch(PageId id, Frame** frame) {
  MutexLock lock(mu_);
  Frame* f = nullptr;
  ODE_RETURN_IF_ERROR(FetchLocked(id, &f));
  f->pins++;
  *frame = f;
  return Status::OK();
}

void BufferPool::Unpin(Frame* frame) {
  MutexLock lock(mu_);
  assert(frame->pins > 0);
  frame->pins--;
}

Status BufferPool::EvictOne(bool* evicted) {
  *evicted = false;
  // Walk from the cold end; the first evictable frame is the victim.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    auto found = frames_.find(*it);
    assert(found != frames_.end());
    Frame* f = found->second.get();
    if (f->pins > 0) continue;
    if (f->dirty) {
      ODE_RETURN_IF_ERROR(FlushFrameLocked(f));
    }
    stats_.evictions.fetch_add(1, std::memory_order_relaxed);
    m_evictions_->Add();
    RemoveFrame(f);
    *evicted = true;
    return Status::OK();
  }
  return Status::OK();
}

void BufferPool::RemoveFrame(Frame* frame) {
  lru_.erase(frame->lru_pos);
  frames_.erase(frame->id);
  m_frames_->Set(static_cast<int64_t>(frames_.size()));
}

Status BufferPool::EnsureRoom() {
  if (frames_.size() < capacity_) return Status::OK();
  bool evicted = false;
  ODE_RETURN_IF_ERROR(EvictOne(&evicted));
  if (!evicted) {
    // Everything pinned: grow rather than fail.
    stats_.grows.fetch_add(1, std::memory_order_relaxed);
    m_grows_->Add();
  }
  return Status::OK();
}

Status BufferPool::ShrinkToCapacity() {
  MutexLock lock(mu_);
  while (frames_.size() > capacity_) {
    bool evicted = false;
    ODE_RETURN_IF_ERROR(EvictOne(&evicted));
    if (!evicted) break;  // Everything pinned: give up for now.
  }
  return Status::OK();
}

Status BufferPool::FlushFrameLocked(Frame* frame) {
  if (!frame->dirty) return Status::OK();
  ODE_RETURN_IF_ERROR(pager_->WritePage(frame->id, frame->data.get()));
  frame->dirty = false;
  stats_.flushes.fetch_add(1, std::memory_order_relaxed);
  m_flushes_->Add();
  return Status::OK();
}

Status BufferPool::FlushAll() {
  MutexLock lock(mu_);
  for (auto& [id, f] : frames_) {
    if (f->dirty) {
      ODE_RETURN_IF_ERROR(FlushFrameLocked(f.get()));
    }
  }
  return Status::OK();
}

void BufferPool::Evict(PageId id) {
  MutexLock lock(mu_);
  auto it = frames_.find(id);
  if (it == frames_.end()) return;
  if (it->second->pins > 0 || it->second->dirty) return;
  RemoveFrame(it->second.get());
}

void BufferPool::ResetStats() {
  stats_.hits.store(0, std::memory_order_relaxed);
  stats_.misses.store(0, std::memory_order_relaxed);
  stats_.evictions.store(0, std::memory_order_relaxed);
  stats_.flushes.store(0, std::memory_order_relaxed);
  stats_.grows.store(0, std::memory_order_relaxed);
  stats_.read_errors.store(0, std::memory_order_relaxed);
}

}  // namespace ode
