#include "storage/buffer_pool.h"

#include <cassert>

#include "util/logging.h"

namespace ode {

BufferPool::BufferPool(Pager* pager, size_t capacity_pages,
                       MetricsRegistry* metrics)
    : pager_(pager), capacity_(capacity_pages == 0 ? 1 : capacity_pages) {
  MetricsRegistry& m =
      metrics != nullptr ? *metrics : MetricsRegistry::Global();
  m_hits_ = m.GetCounter("storage.pool.hits");
  m_misses_ = m.GetCounter("storage.pool.misses");
  m_evictions_ = m.GetCounter("storage.pool.evictions");
  m_flushes_ = m.GetCounter("storage.pool.flushes");
  m_grows_ = m.GetCounter("storage.pool.grows");
  m_read_errors_ = m.GetCounter("storage.pool.read_errors");
  m_frames_ = m.GetGauge("storage.pool.frames");
}

Status BufferPool::Fetch(PageId id, Frame** frame) {
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    stats_.hits++;
    m_hits_->Add();
    Frame* f = it->second.get();
    f->pins++;
    lru_.splice(lru_.begin(), lru_, f->lru_pos);  // move to MRU position
    *frame = f;
    return Status::OK();
  }
  stats_.misses++;
  m_misses_->Add();
  ODE_RETURN_IF_ERROR(EnsureRoom());
  auto f = std::make_unique<Frame>();
  f->id = id;
  f->data = std::make_unique<char[]>(kPageSize);
  // Read before the frame is linked into frames_/lru_: a failed read must
  // not leave a half-initialized frame behind.
  Status read = pager_->ReadPage(id, f->data.get());
  if (!read.ok()) {
    stats_.read_errors++;
    m_read_errors_->Add();
    return read;
  }
  f->pins = 1;
  lru_.push_front(id);
  f->lru_pos = lru_.begin();
  Frame* raw = f.get();
  frames_.emplace(id, std::move(f));
  m_frames_->Set(static_cast<int64_t>(frames_.size()));
  *frame = raw;
  return Status::OK();
}

void BufferPool::Unpin(Frame* frame) {
  assert(frame->pins > 0);
  frame->pins--;
}

Status BufferPool::EvictOne(bool* evicted) {
  *evicted = false;
  // Walk from the cold end; the first evictable frame is the victim.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    auto found = frames_.find(*it);
    assert(found != frames_.end());
    Frame* f = found->second.get();
    if (f->pins > 0) continue;
    if (f->dirty && !f->flushable) continue;  // No-steal: keep txn pages.
    if (f->dirty) {
      ODE_RETURN_IF_ERROR(FlushFrame(f));
    }
    stats_.evictions++;
    m_evictions_->Add();
    RemoveFrame(f);
    *evicted = true;
    return Status::OK();
  }
  return Status::OK();
}

void BufferPool::RemoveFrame(Frame* frame) {
  lru_.erase(frame->lru_pos);
  frames_.erase(frame->id);
  m_frames_->Set(static_cast<int64_t>(frames_.size()));
}

Status BufferPool::EnsureRoom() {
  if (frames_.size() < capacity_) return Status::OK();
  bool evicted = false;
  ODE_RETURN_IF_ERROR(EvictOne(&evicted));
  if (!evicted) {
    // Everything pinned or unflushable: grow rather than fail.
    stats_.grows++;
    m_grows_->Add();
  }
  return Status::OK();
}

Status BufferPool::ShrinkToCapacity() {
  while (frames_.size() > capacity_) {
    bool evicted = false;
    ODE_RETURN_IF_ERROR(EvictOne(&evicted));
    if (!evicted) break;  // Everything pinned: give up for now.
  }
  return Status::OK();
}

Status BufferPool::FlushFrame(Frame* frame) {
  if (!frame->dirty) return Status::OK();
  assert(frame->flushable);
  ODE_RETURN_IF_ERROR(pager_->WritePage(frame->id, frame->data.get()));
  frame->dirty = false;
  stats_.flushes++;
  m_flushes_->Add();
  return Status::OK();
}

Status BufferPool::FlushAll() {
  for (auto& [id, f] : frames_) {
    if (f->dirty && f->flushable) {
      ODE_RETURN_IF_ERROR(FlushFrame(f.get()));
    }
  }
  return Status::OK();
}

void BufferPool::Evict(PageId id) {
  auto it = frames_.find(id);
  if (it == frames_.end()) return;
  if (it->second->pins > 0 || it->second->dirty) return;
  RemoveFrame(it->second.get());
}

}  // namespace ode
