#include "storage/slotted_page.h"

#include <cassert>
#include <cstring>
#include <vector>

#include "util/coding.h"

namespace ode {

namespace {

inline uint16_t GetU16(const char* p) { return DecodeFixed16(p); }
inline void SetU16(char* p, uint16_t v) { EncodeFixed16(p, v); }

inline uint16_t HeapStart(const char* page) {
  return static_cast<uint16_t>(8 + GetU16(page + 6));
}
inline uint16_t HeapEnd(const char* page) { return GetU16(page + 4); }
inline void SetHeapEnd(char* page, uint16_t v) { SetU16(page + 4, v); }
inline uint16_t NumSlots(const char* page) { return GetU16(page + 2); }
inline void SetNumSlots(char* page, uint16_t v) { SetU16(page + 2, v); }

inline const char* SlotPtr(const char* page, uint16_t slot) {
  return page + kPageSize - 4u * (slot + 1);
}
inline char* SlotPtr(char* page, uint16_t slot) {
  return page + kPageSize - 4u * (slot + 1);
}
inline uint16_t SlotOffset(const char* page, uint16_t slot) {
  return GetU16(SlotPtr(page, slot));
}
inline uint16_t SlotLength(const char* page, uint16_t slot) {
  return GetU16(SlotPtr(page, slot) + 2);
}
inline void SetSlot(char* page, uint16_t slot, uint16_t offset, uint16_t len) {
  SetU16(SlotPtr(page, slot), offset);
  SetU16(SlotPtr(page, slot) + 2, len);
}

/// Space between heap end and the slot directory.
inline uint16_t Gap(const char* page) {
  const uint32_t dir_start = kPageSize - 4u * NumSlots(page);
  const uint32_t heap_end = HeapEnd(page);
  return dir_start > heap_end ? static_cast<uint16_t>(dir_start - heap_end)
                              : 0;
}

/// Finds a deleted slot index to reuse, or NumSlots for a new one.
uint16_t FindFreeSlot(const char* page) {
  const uint16_t n = NumSlots(page);
  for (uint16_t i = 0; i < n; i++) {
    if (SlotOffset(page, i) == 0) return i;
  }
  return n;
}

}  // namespace

uint16_t SlottedPage::MaxRecordSize(uint16_t extra) {
  return static_cast<uint16_t>(kPageSize - kHeaderSize - extra - kSlotSize);
}

void SlottedPage::Init(char* page, PageType type, uint16_t extra) {
  memset(page, 0, kPageSize);
  page[0] = static_cast<char>(type);
  SetNumSlots(page, 0);
  SetU16(page + 6, extra);
  SetHeapEnd(page, static_cast<uint16_t>(kHeaderSize + extra));
}

PageType SlottedPage::Type(const char* page) {
  return static_cast<PageType>(page[0]);
}

uint16_t SlottedPage::SlotCount(const char* page) { return NumSlots(page); }

char* SlottedPage::Extra(char* page) { return page + kHeaderSize; }
const char* SlottedPage::Extra(const char* page) { return page + kHeaderSize; }

bool SlottedPage::Insert(char* page, const Slice& record, uint16_t* slot) {
  if (record.size() > MaxRecordSize(GetU16(page + 6))) return false;
  const uint16_t target = FindFreeSlot(page);
  const bool new_slot = (target == NumSlots(page));
  const uint32_t need =
      record.size() + (new_slot ? kSlotSize : 0);
  if (Gap(page) < need) {
    Compact(page);
    if (Gap(page) < need) return false;
  }
  const uint16_t offset = HeapEnd(page);
  memcpy(page + offset, record.data(), record.size());
  SetHeapEnd(page, static_cast<uint16_t>(offset + record.size()));
  if (new_slot) SetNumSlots(page, static_cast<uint16_t>(target + 1));
  SetSlot(page, target, offset, static_cast<uint16_t>(record.size()));
  *slot = target;
  return true;
}

bool SlottedPage::Read(const char* page, uint16_t slot, Slice* record) {
  if (slot >= NumSlots(page)) return false;
  const uint16_t offset = SlotOffset(page, slot);
  if (offset == 0) return false;
  *record = Slice(page + offset, SlotLength(page, slot));
  return true;
}

bool SlottedPage::Update(char* page, uint16_t slot, const Slice& record) {
  if (slot >= NumSlots(page)) return false;
  const uint16_t offset = SlotOffset(page, slot);
  if (offset == 0) return false;
  const uint16_t old_len = SlotLength(page, slot);
  if (record.size() <= old_len) {
    memcpy(page + offset, record.data(), record.size());
    SetSlot(page, slot, offset, static_cast<uint16_t>(record.size()));
    return true;
  }
  if (record.size() > MaxRecordSize(GetU16(page + 6))) return false;
  // Re-allocate: logically free the old space, then place at heap end.
  SetSlot(page, slot, 0, 0);
  if (Gap(page) < record.size()) {
    Compact(page);
    if (Gap(page) < record.size()) {
      // Restore the old record's slot before failing.
      // After Compact the old bytes are gone, so we must not fail after
      // freeing unless we can restore; avoid that by checking capacity first.
      // (We reach here only if even compaction cannot make room; the caller
      // treats this as "move the record to another page". The old record is
      // lost from this page, so re-insert it from the caller's copy.)
      return false;
    }
  }
  const uint16_t new_offset = HeapEnd(page);
  memcpy(page + new_offset, record.data(), record.size());
  SetHeapEnd(page, static_cast<uint16_t>(new_offset + record.size()));
  SetSlot(page, slot, new_offset, static_cast<uint16_t>(record.size()));
  return true;
}

bool SlottedPage::Delete(char* page, uint16_t slot) {
  if (slot >= NumSlots(page)) return false;
  if (SlotOffset(page, slot) == 0) return false;
  SetSlot(page, slot, 0, 0);
  // Trim trailing free slots so the directory can shrink.
  uint16_t n = NumSlots(page);
  while (n > 0 && SlotOffset(page, static_cast<uint16_t>(n - 1)) == 0) {
    n--;
  }
  SetNumSlots(page, n);
  return true;
}

uint16_t SlottedPage::FreeSpace(const char* page) {
  const uint16_t gap = Gap(page);
  const bool has_free_slot = FindFreeSlot(page) < NumSlots(page);
  const uint16_t slot_cost = has_free_slot ? 0 : kSlotSize;
  // Also count reclaimable holes (space Compact would recover).
  uint32_t live = LiveBytes(page);
  const uint32_t heap_used = HeapEnd(page) - HeapStart(page);
  const uint32_t holes = heap_used - live;
  const uint32_t avail = gap + holes;
  return avail > slot_cost ? static_cast<uint16_t>(avail - slot_cost) : 0;
}

uint32_t SlottedPage::LiveBytes(const char* page) {
  uint32_t live = 0;
  const uint16_t n = NumSlots(page);
  for (uint16_t i = 0; i < n; i++) {
    if (SlotOffset(page, i) != 0) live += SlotLength(page, i);
  }
  return live;
}

void SlottedPage::Compact(char* page) {
  const uint16_t n = NumSlots(page);
  const uint16_t heap_start = HeapStart(page);
  std::vector<char> heap;
  heap.reserve(HeapEnd(page) - heap_start);
  std::vector<std::pair<uint16_t, uint16_t>> new_slots(n, {0, 0});
  for (uint16_t i = 0; i < n; i++) {
    const uint16_t offset = SlotOffset(page, i);
    if (offset == 0) continue;
    const uint16_t len = SlotLength(page, i);
    new_slots[i] = {static_cast<uint16_t>(heap_start + heap.size()), len};
    heap.insert(heap.end(), page + offset, page + offset + len);
  }
  memcpy(page + heap_start, heap.data(), heap.size());
  SetHeapEnd(page, static_cast<uint16_t>(heap_start + heap.size()));
  for (uint16_t i = 0; i < n; i++) {
    SetSlot(page, i, new_slots[i].first, new_slots[i].second);
  }
}

}  // namespace ode
