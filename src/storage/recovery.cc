#include "storage/recovery.h"

#include <string>
#include <unordered_set>

namespace ode {

Status RunRecovery(Pager* pager, Wal* wal, RecoveryStats* stats) {
  *stats = RecoveryStats();

  // Pass 1: find committed transactions.
  std::unordered_set<TxnId> committed;
  {
    Wal::Reader reader(wal->file());
    Wal::Record record;
    std::string scratch;
    bool eof = false;
    while (true) {
      ODE_RETURN_IF_ERROR(reader.Next(&record, &scratch, &eof));
      if (eof) break;
      stats->records_scanned++;
      if (record.type == Wal::RecordType::kCommit) {
        committed.insert(record.txn_id);
      }
    }
  }
  stats->committed_txns = committed.size();

  // Pass 2: replay committed page images in log order.
  if (!committed.empty()) {
    Wal::Reader reader(wal->file());
    Wal::Record record;
    std::string scratch;
    bool eof = false;
    while (true) {
      ODE_RETURN_IF_ERROR(reader.Next(&record, &scratch, &eof));
      if (eof) break;
      if (record.type == Wal::RecordType::kPageImage &&
          committed.count(record.txn_id) > 0) {
        ODE_RETURN_IF_ERROR(
            pager->WritePage(record.page_id, record.image.data()));
        stats->pages_replayed++;
      }
    }
    ODE_RETURN_IF_ERROR(pager->Sync());
  }

  // The log's work is done.
  return wal->Reset();
}

}  // namespace ode
