#include "storage/recovery.h"

#include <string>
#include <unordered_set>

namespace ode {

namespace {

// The reader stopped at a damaged record during pass 1. Decide whether it is
// a legitimate torn tail (nothing decodable follows) or mid-log corruption
// (valid records follow the damage). Counts discarded records into `stats`.
Status ClassifyDamagedTail(Wal* wal, const Wal::Reader& reader,
                           RecoveryStats* stats) {
  stats->torn_tail_records++;
  // When the damaged record's framing was destroyed (short header/body or a
  // nonsense length) there is no way to locate a following record; treat it
  // as the tail.
  uint64_t probe_offset = reader.torn_resync_offset();
  Wal::Record record;
  std::string scratch;
  while (probe_offset != 0) {
    Wal::Reader probe(wal->file(), probe_offset);
    bool eof = false;
    ODE_RETURN_IF_ERROR(probe.Next(&record, &scratch, &eof));
    if (!eof) {
      return Status::Corruption(
          "WAL record at offset " + std::to_string(reader.offset()) +
          " is corrupt but valid records follow at offset " +
          std::to_string(probe_offset) + "; refusing to recover");
    }
    if (probe.tail() == Wal::Reader::TailState::kCleanEof) break;
    stats->torn_tail_records++;  // Another damaged record; keep probing.
    probe_offset = probe.torn_resync_offset();
  }
  return Status::OK();
}

}  // namespace

Status RunRecovery(Pager* pager, Wal* wal, RecoveryStats* stats) {
  *stats = RecoveryStats();

  // Pass 1: find committed transactions.
  std::unordered_set<TxnId> committed;
  {
    Wal::Reader reader(wal->file());
    Wal::Record record;
    std::string scratch;
    bool eof = false;
    while (true) {
      ODE_RETURN_IF_ERROR(reader.Next(&record, &scratch, &eof));
      if (eof) break;
      stats->records_scanned++;
      if (record.type == Wal::RecordType::kCommit) {
        committed.insert(record.txn_id);
      }
    }
    if (reader.tail() == Wal::Reader::TailState::kTorn) {
      ODE_RETURN_IF_ERROR(ClassifyDamagedTail(wal, reader, stats));
    }
  }
  stats->committed_txns = committed.size();

  // Pass 2: replay committed page images in log order. (The reader stops at
  // the same damaged record as pass 1, so a discarded tail is never replayed.)
  if (!committed.empty()) {
    Wal::Reader reader(wal->file());
    Wal::Record record;
    std::string scratch;
    bool eof = false;
    while (true) {
      ODE_RETURN_IF_ERROR(reader.Next(&record, &scratch, &eof));
      if (eof) break;
      if (record.type == Wal::RecordType::kPageImage &&
          committed.count(record.txn_id) > 0) {
        ODE_RETURN_IF_ERROR(
            pager->WritePage(record.page_id, record.image.data()));
        stats->pages_replayed++;
      }
    }
    ODE_RETURN_IF_ERROR(pager->Sync());
  }

  // The log's work is done.
  return wal->Reset();
}

}  // namespace ode
