#ifndef ODE_STORAGE_WAL_H_
#define ODE_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>

#include "storage/page.h"
#include "util/env.h"
#include "util/metrics.h"
#include "util/slice.h"
#include "util/status.h"

namespace ode {

using TxnId = uint64_t;

/// Redo-only write-ahead log.
///
/// ODE uses a no-steal buffer policy: dirty pages of an uncommitted
/// transaction never reach the database file, so no undo information is
/// logged. At commit, the full after-image of every page the transaction
/// dirtied is appended, followed by a commit record. Recovery replays page
/// images of committed transactions in log order (see recovery.h).
///
/// Record framing: [len u32][masked crc32c u32][body], where body is
/// [type u8][txn_id u64][payload]. A torn or corrupt tail ends the scan.
class Wal {
 public:
  enum class RecordType : uint8_t {
    kPageImage = 1,  ///< payload: page_id u32 + kPageSize image bytes
    kCommit = 2,     ///< payload: empty
  };

  /// A decoded record (image points into caller-provided scratch).
  struct Record {
    RecordType type;
    TxnId txn_id = 0;
    PageId page_id = kInvalidPageId;
    Slice image;
  };

  /// Controls when the log is forced to stable storage.
  enum class SyncMode {
    kSyncEveryCommit,  ///< fdatasync after each commit record (durable).
    kNoSync,           ///< leave flushing to the OS (fast, test/bench use).
  };

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Opens (creating if needed) the log file at `path` for appending,
  /// through `env`. `metrics` counts appends/fsyncs/bytes under
  /// `storage.wal.*`; nullptr means the global registry.
  static Status Open(Env* env, const std::string& path, SyncMode mode,
                     std::unique_ptr<Wal>* out,
                     MetricsRegistry* metrics = nullptr);

  /// Opens via Env::Default().
  static Status Open(const std::string& path, SyncMode mode,
                     std::unique_ptr<Wal>* out) {
    return Open(Env::Default(), path, mode, out);
  }

  Status AppendPageImage(TxnId txn, PageId page, const char* image);

  /// Appends a commit record; syncs per the SyncMode.
  Status AppendCommit(TxnId txn);

  /// Appends a commit record WITHOUT syncing, regardless of SyncMode. The
  /// engine's group-commit path uses this: records are published under the
  /// log latch and a batch leader issues one Sync() for every commit queued
  /// since the last fsync (docs/STORAGE.md "Group commit").
  Status AppendCommitRecord(TxnId txn);

  /// Forces the log to stable storage. `storage.wal.fsyncs` counts only
  /// successful syncs; failures bump `storage.wal.fsync_errors` instead.
  Status Sync();

  /// Truncates the log to empty (after a checkpoint).
  Status Reset();

  /// Truncates the log back to `offset` bytes — used to scrub the partial
  /// records of a commit that failed mid-append, so a log that stays in use
  /// can never expose that transaction's records to a later recovery.
  Status TruncateTo(uint64_t offset);

  /// Current log size in bytes.
  uint64_t size_bytes() const { return write_offset_; }

  void set_sync_mode(SyncMode mode) { sync_mode_ = mode; }
  SyncMode sync_mode() const { return sync_mode_; }

  /// Sequential scanner over a closed or live log file, used by recovery.
  class Reader {
   public:
    /// How the scan ended (meaningful once *eof was set).
    enum class TailState {
      kNone,      ///< Still mid-scan.
      kCleanEof,  ///< The log ended exactly at a record boundary.
      kTorn,      ///< The last record was short or failed its checksum.
    };

    explicit Reader(File* file, uint64_t start_offset = 0)
        : file_(file), offset_(start_offset) {}

    /// Reads the next record. Sets *eof=true (and returns OK) at clean end
    /// of log or at the first torn/corrupt record; tail() distinguishes the
    /// two. Returns a real error only for I/O failures.
    Status Next(Record* record, std::string* scratch, bool* eof);

    TailState tail() const { return tail_; }

    /// Byte offset of the next unread record (= where a torn tail starts).
    uint64_t offset() const { return offset_; }

    /// When tail() is kTorn and the damaged record's framing was intact
    /// (its full body is present but the checksum or content is bad), the
    /// offset just past it — recovery probes there to tell a torn tail from
    /// corruption in the middle of the log. 0 when the record cannot be
    /// skipped (short header or body: nothing can follow it).
    uint64_t torn_resync_offset() const { return torn_resync_offset_; }

   private:
    File* file_;
    uint64_t offset_ = 0;
    TailState tail_ = TailState::kNone;
    uint64_t torn_resync_offset_ = 0;
  };

  File* file() { return file_.get(); }

 private:
  Wal(std::unique_ptr<File> file, SyncMode mode, uint64_t write_offset,
      MetricsRegistry* metrics);

  Status AppendRecord(RecordType type, TxnId txn, const Slice& payload);

  std::unique_ptr<File> file_;
  SyncMode sync_mode_;
  uint64_t write_offset_;
  std::string buffer_;  // reused encode buffer
  Counter* appends_;        ///< storage.wal.appends (records written)
  Counter* appended_bytes_; ///< storage.wal.appended_bytes
  Counter* fsyncs_;         ///< storage.wal.fsyncs (successful only)
  Counter* fsync_errors_;   ///< storage.wal.fsync_errors
  Gauge* size_gauge_;       ///< storage.wal.bytes (current log size)
};

}  // namespace ode

#endif  // ODE_STORAGE_WAL_H_
