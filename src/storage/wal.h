#ifndef ODE_STORAGE_WAL_H_
#define ODE_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>

#include "storage/page.h"
#include "util/env.h"
#include "util/slice.h"
#include "util/status.h"

namespace ode {

using TxnId = uint64_t;

/// Redo-only write-ahead log.
///
/// ODE uses a no-steal buffer policy: dirty pages of an uncommitted
/// transaction never reach the database file, so no undo information is
/// logged. At commit, the full after-image of every page the transaction
/// dirtied is appended, followed by a commit record. Recovery replays page
/// images of committed transactions in log order (see recovery.h).
///
/// Record framing: [len u32][masked crc32c u32][body], where body is
/// [type u8][txn_id u64][payload]. A torn or corrupt tail ends the scan.
class Wal {
 public:
  enum class RecordType : uint8_t {
    kPageImage = 1,  ///< payload: page_id u32 + kPageSize image bytes
    kCommit = 2,     ///< payload: empty
  };

  /// A decoded record (image points into caller-provided scratch).
  struct Record {
    RecordType type;
    TxnId txn_id = 0;
    PageId page_id = kInvalidPageId;
    Slice image;
  };

  /// Controls when the log is forced to stable storage.
  enum class SyncMode {
    kSyncEveryCommit,  ///< fdatasync after each commit record (durable).
    kNoSync,           ///< leave flushing to the OS (fast, test/bench use).
  };

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Opens (creating if needed) the log file at `path` for appending.
  static Status Open(const std::string& path, SyncMode mode,
                     std::unique_ptr<Wal>* out);

  Status AppendPageImage(TxnId txn, PageId page, const char* image);

  /// Appends a commit record; syncs per the SyncMode.
  Status AppendCommit(TxnId txn);

  Status Sync();

  /// Truncates the log to empty (after a checkpoint).
  Status Reset();

  /// Current log size in bytes.
  uint64_t size_bytes() const { return write_offset_; }

  void set_sync_mode(SyncMode mode) { sync_mode_ = mode; }
  SyncMode sync_mode() const { return sync_mode_; }

  /// Sequential scanner over a closed or live log file, used by recovery.
  class Reader {
   public:
    explicit Reader(File* file) : file_(file) {}

    /// Reads the next record. Sets *eof=true (and returns OK) at clean end
    /// of log or at the first torn/corrupt record.
    Status Next(Record* record, std::string* scratch, bool* eof);

   private:
    File* file_;
    uint64_t offset_ = 0;
  };

  File* file() { return file_.get(); }

 private:
  Wal(std::unique_ptr<File> file, SyncMode mode, uint64_t write_offset)
      : file_(std::move(file)),
        sync_mode_(mode),
        write_offset_(write_offset) {}

  Status AppendRecord(RecordType type, TxnId txn, const Slice& payload);

  std::unique_ptr<File> file_;
  SyncMode sync_mode_;
  uint64_t write_offset_;
  std::string buffer_;  // reused encode buffer
};

}  // namespace ode

#endif  // ODE_STORAGE_WAL_H_
