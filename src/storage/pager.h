#ifndef ODE_STORAGE_PAGER_H_
#define ODE_STORAGE_PAGER_H_

#include <memory>
#include <string>

#include "storage/page.h"
#include "util/env.h"
#include "util/status.h"

namespace ode {

/// Raw page I/O on the database file. The pager knows nothing about caching,
/// transactions or logging — that is the StorageEngine's job. It only
/// guarantees page-granular reads/writes and file growth.
class Pager {
 public:
  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Opens (or creates) the database file through `env`. A new file is
  /// formatted with a fresh superblock. `created` reports whether formatting
  /// happened.
  static Status Open(Env* env, const std::string& path,
                     std::unique_ptr<Pager>* out, bool* created);

  /// Opens via Env::Default().
  static Status Open(const std::string& path, std::unique_ptr<Pager>* out,
                     bool* created) {
    return Open(Env::Default(), path, out, created);
  }

  /// Reads page `id` into `buf` (kPageSize bytes). Pages past the current
  /// high-water mark read as zeroes (they exist logically but were never
  /// written).
  Status ReadPage(PageId id, char* buf) const;

  /// Writes `buf` (kPageSize bytes) as page `id`, extending the file as
  /// needed.
  Status WritePage(PageId id, const char* buf);

  /// Flushes the file to stable storage.
  Status Sync();

  /// Shrinks the file to `page_count` pages (Vacuum support; the caller
  /// guarantees the dropped tail is unreferenced and metadata is durable).
  Status TruncateToPages(uint32_t page_count);

  const std::string& path() const { return path_; }

 private:
  Pager(std::unique_ptr<File> file, std::string path)
      : file_(std::move(file)), path_(std::move(path)) {}

  std::unique_ptr<File> file_;
  std::string path_;
};

}  // namespace ode

#endif  // ODE_STORAGE_PAGER_H_
