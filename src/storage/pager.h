#ifndef ODE_STORAGE_PAGER_H_
#define ODE_STORAGE_PAGER_H_

#include <memory>
#include <string>

#include "storage/page.h"
#include "util/env.h"
#include "util/metrics.h"
#include "util/status.h"

namespace ode {

/// Raw page I/O on the database file. The pager knows nothing about caching,
/// transactions or logging — that is the StorageEngine's job. It only
/// guarantees page-granular reads/writes and file growth.
///
/// Observability: every page read/write/sync bumps the `storage.pager.*`
/// counters of the metrics registry it was opened with (docs/OBSERVABILITY.md).
class Pager {
 public:
  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Opens (or creates) the database file through `env`. A new file is
  /// formatted with a fresh superblock. `created` reports whether formatting
  /// happened. `metrics` counts page I/O; nullptr means the global registry.
  static Status Open(Env* env, const std::string& path,
                     std::unique_ptr<Pager>* out, bool* created,
                     MetricsRegistry* metrics = nullptr);

  /// Opens via Env::Default().
  static Status Open(const std::string& path, std::unique_ptr<Pager>* out,
                     bool* created) {
    return Open(Env::Default(), path, out, created);
  }

  /// Reads page `id` into `buf` (kPageSize bytes). Pages past the current
  /// high-water mark read as zeroes (they exist logically but were never
  /// written).
  Status ReadPage(PageId id, char* buf) const;

  /// Reads `count` consecutive pages starting at `first` into the scattered
  /// `bufs` (each kPageSize bytes) through the File::ReadBatch readv path —
  /// one large sequential I/O instead of `count` 4 KiB preads. Pages past
  /// the high-water mark read as zeroes, like ReadPage. Batch sizes land in
  /// the `storage.readbatch.*` counters.
  Status ReadPages(PageId first, uint32_t count, char* const* bufs) const;

  /// Writes `buf` (kPageSize bytes) as page `id`, extending the file as
  /// needed.
  Status WritePage(PageId id, const char* buf);

  /// Flushes the file to stable storage.
  Status Sync();

  /// Shrinks the file to `page_count` pages (Vacuum support; the caller
  /// guarantees the dropped tail is unreferenced and metadata is durable).
  Status TruncateToPages(uint32_t page_count);

  const std::string& path() const { return path_; }

 private:
  Pager(std::unique_ptr<File> file, std::string path,
        MetricsRegistry* metrics);

  std::unique_ptr<File> file_;
  std::string path_;
  Counter* reads_;   ///< storage.pager.reads
  Counter* writes_;  ///< storage.pager.writes
  Counter* syncs_;   ///< storage.pager.syncs
  Counter* batch_reads_;  ///< storage.readbatch.batches
  Counter* batch_pages_;  ///< storage.readbatch.pages
};

}  // namespace ode

#endif  // ODE_STORAGE_PAGER_H_
