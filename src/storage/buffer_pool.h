#ifndef ODE_STORAGE_BUFFER_POOL_H_
#define ODE_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "storage/page.h"
#include "storage/pager.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/status.h"

namespace ode {

/// A fixed-capacity (growable under pressure) page cache over the Pager with
/// true LRU eviction (recency list maintained on every fetch; victims found
/// from the cold end).
///
/// Concurrency contract (see docs/CONCURRENCY.md): the pool caches ONLY
/// committed page images. Transactions never mutate pool frames in place —
/// they write private shadow copies owned by the StorageEngine's per-txn
/// state, and at commit the engine publishes each shadow atomically with
/// Install(). All structural state (maps, LRU list, frame flags) is guarded
/// by an internal mutex; readers obtained through FetchHandle() keep the
/// frame's buffer alive via shared ownership, so a concurrent Install() of a
/// newer image can swap the frame's buffer without pulling bytes out from
/// under anyone.
class BufferPool {
 public:
  struct Frame {
    PageId id = kInvalidPageId;
    int pins = 0;            ///< Legacy Fetch/Unpin pins (tests, tools).
    bool dirty = false;      ///< Frame content differs from the db file.
    std::list<PageId>::iterator lru_pos;  ///< Position in the recency list.
    /// Shared so outstanding PageHandles keep a swapped-out image alive.
    std::shared_ptr<char[]> data;
  };

  /// All fields are atomics: stats are bumped from concurrent sessions.
  /// Loads convert implicitly, so `stats().hits == 3u` reads naturally.
  struct Stats {
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> flushes{0};
    std::atomic<uint64_t> grows{0};  ///< Times the pool exceeded capacity.
    std::atomic<uint64_t> read_errors{0};  ///< Misses whose page read failed
                                           ///< (no frame is cached).
  };

  /// `metrics` mirrors the Stats struct into `storage.pool.*` registry
  /// counters; nullptr means the global registry.
  BufferPool(Pager* pager, size_t capacity_pages,
             MetricsRegistry* metrics = nullptr);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches the committed image of `id` into `*handle` (loading from the
  /// pager on a miss). The handle shares ownership of the buffer: it stays
  /// readable even if a later Install() replaces the frame's image or the
  /// frame is evicted. No pin is taken — eviction is safe.
  Status FetchHandle(PageId id, class PageHandle* handle);

  /// Publishes a committed page image: the frame (created on demand) gets a
  /// fresh buffer holding `data`, marked dirty, swapped in atomically under
  /// the pool mutex. Never fails: if the pool is full and nothing is
  /// evictable it grows instead (the commit this image belongs to is already
  /// durable in the WAL — failure is not an option here).
  void Install(PageId id, const char* data);

  /// Legacy pinning fetch (single-threaded tests and tools). The caller must
  /// Unpin() exactly once per successful Fetch; the Frame* stays resident
  /// until unpinned. Concurrent Install() to the same page still swaps the
  /// buffer — do not hold raw data pointers across engine commits.
  Status Fetch(PageId id, Frame** frame);

  void Unpin(Frame* frame);

  /// Writes back every dirty frame; clears their dirty flags.
  Status FlushAll();

  /// Drops an unpinned clean frame from the pool if cached (test helper).
  void Evict(PageId id);

  /// Evicts LRU frames (flushing dirty ones) until the pool is back within
  /// capacity. Called after commit when Install() had to grow.
  Status ShrinkToCapacity();

  size_t capacity() const { return capacity_; }
  size_t size() const {
    MutexLock lock(mu_);
    return frames_.size();
  }
  const Stats& stats() const { return stats_; }
  void ResetStats();

 private:
  /// Makes room for one more frame if at capacity. Grows the pool when every
  /// frame is pinned.
  Status EnsureRoom() REQUIRES(mu_);

  /// Evicts the least-recently-used evictable frame; sets *evicted=false if
  /// every frame is pinned.
  Status EvictOne(bool* evicted) REQUIRES(mu_);

  Status FlushFrameLocked(Frame* frame) REQUIRES(mu_);
  void RemoveFrame(Frame* frame) REQUIRES(mu_);
  Status FetchLocked(PageId id, Frame** frame) REQUIRES(mu_);

  Pager* pager_;
  size_t capacity_;
  mutable Mutex mu_;  ///< Guards frames_, lru_, and frame fields.
  std::unordered_map<PageId, std::unique_ptr<Frame>> frames_ GUARDED_BY(mu_);
  /// Recency order: front = most recently used, back = LRU victim side.
  std::list<PageId> lru_ GUARDED_BY(mu_);
  Stats stats_;
  // Registry mirrors of Stats (storage.pool.*, see docs/OBSERVABILITY.md).
  Counter* m_hits_;
  Counter* m_misses_;
  Counter* m_evictions_;
  Counter* m_flushes_;
  Counter* m_grows_;
  Counter* m_read_errors_;
  Gauge* m_frames_;  ///< storage.pool.frames: current resident frame count
};

/// A readable (and for transaction shadow pages, writable) view of one page.
///
/// Three flavors share this one type so callers are agnostic:
///  - FetchHandle(): shares ownership of a committed pool buffer (owner_
///    set, frame_ null) — safe across concurrent Install/eviction.
///  - Borrowed(): a non-owning view of a transaction's private shadow page
///    (only data_/id_ set) — lifetime bounded by the transaction.
///  - legacy pinned mode (pool_ + frame_): RAII Unpin on release.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(BufferPool* pool, BufferPool::Frame* frame)
      : pool_(pool),
        frame_(frame),
        data_(frame != nullptr ? frame->data.get() : nullptr),
        id_(frame != nullptr ? frame->id : kInvalidPageId) {}
  ~PageHandle() { Release(); }

  /// A non-owning view (transaction shadow pages). The caller guarantees
  /// `data` outlives the handle.
  static PageHandle Borrowed(PageId id, char* data) {
    PageHandle h;
    h.id_ = id;
    h.data_ = data;
    return h;
  }

  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  PageHandle(PageHandle&& other) noexcept { MoveFrom(other); }
  PageHandle& operator=(PageHandle&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(other);
    }
    return *this;
  }

  bool valid() const { return data_ != nullptr; }
  PageId id() const { return id_; }
  const char* data() const { return data_; }
  char* mutable_data() { return data_; }
  BufferPool::Frame* frame() { return frame_; }

  void Release() {
    if (frame_ != nullptr && pool_ != nullptr) {
      pool_->Unpin(frame_);
    }
    pool_ = nullptr;
    frame_ = nullptr;
    owner_.reset();
    data_ = nullptr;
    id_ = kInvalidPageId;
  }

 private:
  friend class BufferPool;

  void MoveFrom(PageHandle& other) {
    pool_ = other.pool_;
    frame_ = other.frame_;
    owner_ = std::move(other.owner_);
    data_ = other.data_;
    id_ = other.id_;
    other.pool_ = nullptr;
    other.frame_ = nullptr;
    other.data_ = nullptr;
    other.id_ = kInvalidPageId;
  }

  BufferPool* pool_ = nullptr;
  BufferPool::Frame* frame_ = nullptr;   ///< Legacy pinned mode only.
  std::shared_ptr<char[]> owner_;        ///< FetchHandle shared-buffer mode.
  char* data_ = nullptr;
  PageId id_ = kInvalidPageId;
};

}  // namespace ode

#endif  // ODE_STORAGE_BUFFER_POOL_H_
