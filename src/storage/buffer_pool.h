#ifndef ODE_STORAGE_BUFFER_POOL_H_
#define ODE_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "storage/page.h"
#include "storage/pager.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/status.h"

namespace ode {

/// A fixed-capacity (growable under pressure) page cache over the Pager with
/// true LRU eviction (recency list maintained on every fetch; victims found
/// from the cold end).
///
/// Concurrency contract (see docs/CONCURRENCY.md): the pool caches ONLY
/// committed page images. Transactions never mutate pool frames in place —
/// they write private shadow copies owned by the StorageEngine's per-txn
/// state, and at commit the engine publishes each shadow atomically with
/// Install(). Readers obtained through FetchHandle() keep the frame's buffer
/// alive via shared ownership, so a concurrent Install() of a newer image
/// can swap the frame's buffer without pulling bytes out from under anyone.
///
/// Sharding (docs/CONCURRENCY.md "Buffer-pool sharding"): the pool is
/// partitioned into 2^k shards keyed by a Fibonacci hash of the page id.
/// Each shard owns its own mutex, frame map, LRU list and slice of the
/// capacity, so concurrent readers of unrelated pages never contend on one
/// lock. LRU is therefore per-shard (approximate globally — the standard
/// trade, same as the lock manager's 16-way shard split); capacity and the
/// `storage.pool.*` stats aggregate across shards.
class BufferPool {
 public:
  struct Frame {
    PageId id = kInvalidPageId;
    int pins = 0;            ///< Legacy Fetch/Unpin pins (tests, tools).
    bool dirty = false;      ///< Frame content differs from the db file.
    /// Loaded by Prefetch and not yet touched by a demand fetch; the first
    /// fetch counts as a prefetch hit (storage.pool.prefetch_hits) and
    /// clears the flag.
    bool prefetched = false;
    std::list<PageId>::iterator lru_pos;  ///< Position in the recency list.
    /// Shared so outstanding PageHandles keep a swapped-out image alive.
    std::shared_ptr<char[]> data;
  };

  /// All fields are atomics: stats are bumped from concurrent sessions.
  /// Loads convert implicitly, so `stats().hits == 3u` reads naturally.
  struct Stats {
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};  ///< Demand reads (not prefetch loads).
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> flushes{0};
    std::atomic<uint64_t> grows{0};  ///< Times the pool exceeded capacity.
    std::atomic<uint64_t> read_errors{0};  ///< Misses whose page read failed
                                           ///< (no frame is cached).
    std::atomic<uint64_t> prefetch_loads{0};  ///< Frames loaded by Prefetch.
    std::atomic<uint64_t> prefetch_hits{0};   ///< First fetch of a
                                              ///< prefetched frame.
  };

  /// `metrics` mirrors the Stats struct into `storage.pool.*` registry
  /// counters; nullptr means the global registry. `shards` is rounded down
  /// to a power of two and clamped to [1, capacity] (a shard with zero
  /// capacity could never cache anything); the default keeps the historic
  /// single-mutex behavior for direct constructions — the engine passes
  /// EngineOptions::buffer_pool_shards.
  BufferPool(Pager* pager, size_t capacity_pages,
             MetricsRegistry* metrics = nullptr, size_t shards = 1);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Drops this pool's resident frames from the shared storage.pool.frames
  /// gauge (the gauge is kept by +/- deltas now that shards update it
  /// concurrently).
  ~BufferPool();

  /// Fetches the committed image of `id` into `*handle` (loading from the
  /// pager on a miss). The handle shares ownership of the buffer: it stays
  /// readable even if a later Install() replaces the frame's image or the
  /// frame is evicted. No pin is taken — eviction is safe.
  Status FetchHandle(PageId id, class PageHandle* handle);

  /// Publishes a committed page image: the frame (created on demand) gets a
  /// fresh buffer holding `data`, marked dirty, swapped in atomically under
  /// the shard mutex. Never fails: if the shard is full and nothing is
  /// evictable it grows instead (the commit this image belongs to is already
  /// durable in the WAL — failure is not an option here).
  void Install(PageId id, const char* data);

  /// Legacy pinning fetch (single-threaded tests and tools). The caller must
  /// Unpin() exactly once per successful Fetch; the Frame* stays resident
  /// until unpinned. Concurrent Install() to the same page still swaps the
  /// buffer — do not hold raw data pointers across engine commits.
  Status Fetch(PageId id, Frame** frame);

  void Unpin(Frame* frame);

  /// Read-ahead for cold scans: loads the not-yet-resident pages among `ids`
  /// with batched sequential reads (Pager::ReadPages over each contiguous
  /// run, issued OUTSIDE the shard mutexes — demand misses serialize the
  /// read under the shard latch, which is exactly what this path avoids)
  /// and installs them as CLEAN frames. Ids already cached, or cached by a
  /// racing fetch between the read and the install, keep their frame (it is
  /// at least as new as what was read). Never overwrites committed state:
  /// prefetched frames are clean, so they can never be flushed over a newer
  /// Install()ed image.
  Status Prefetch(const PageId* ids, size_t count);

  /// Writes back every dirty frame; clears their dirty flags. `flushed`
  /// (optional) reports how many frames were written — the fuzzy
  /// checkpointer uses it to size its write-behind metrics.
  Status FlushAll(size_t* flushed = nullptr);

  /// Drops an unpinned clean frame from the pool if cached (test helper).
  void Evict(PageId id);

  /// Evicts LRU frames (flushing dirty ones) until every shard is back
  /// within its capacity. Called after commit when Install() had to grow.
  Status ShrinkToCapacity();

  size_t capacity() const { return capacity_; }
  size_t size() const;
  /// Number of shards actually in use (after rounding/clamping).
  size_t shard_count() const { return shards_.size(); }
  const Stats& stats() const { return stats_; }
  void ResetStats();

 private:
  struct Shard {
    mutable Mutex mu;  ///< Guards frames, lru, and frame fields.
    std::unordered_map<PageId, std::unique_ptr<Frame>> frames GUARDED_BY(mu);
    /// Recency order: front = most recently used, back = LRU victim side.
    std::list<PageId> lru GUARDED_BY(mu);
    size_t capacity = 0;  ///< This shard's slice of the total (immutable).
  };

  Shard& ShardOf(PageId id) {
    // Fibonacci hash: page ids are small sequential ints, so multiply by
    // the 64-bit golden ratio and keep the top bits for an even spread.
    // (shift >= 64 means one shard; shifting by 64 would be UB.)
    if (shard_shift_ >= 64) return *shards_[0];
    return *shards_[(id * 0x9E3779B97F4A7C15ull) >> shard_shift_];
  }

  /// Makes room for one more frame if the shard is at capacity. Grows when
  /// every frame is pinned.
  Status EnsureRoom(Shard& shard) REQUIRES(shard.mu);

  /// Evicts the shard's least-recently-used evictable frame; sets
  /// *evicted=false if every frame is pinned.
  Status EvictOne(Shard& shard, bool* evicted) REQUIRES(shard.mu);

  Status FlushFrameLocked(Shard& shard, Frame* frame) REQUIRES(shard.mu);
  void RemoveFrame(Shard& shard, Frame* frame) REQUIRES(shard.mu);
  Status FetchLocked(Shard& shard, PageId id, Frame** frame)
      REQUIRES(shard.mu);

  Pager* pager_;
  size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;  ///< Power-of-two count.
  unsigned shard_shift_;  ///< 64 - log2(shards_.size()); selector shift.
  Stats stats_;
  // Registry mirrors of Stats (storage.pool.*, see docs/OBSERVABILITY.md).
  Counter* m_hits_;
  Counter* m_misses_;
  Counter* m_evictions_;
  Counter* m_flushes_;
  Counter* m_grows_;
  Counter* m_read_errors_;
  Counter* m_prefetch_loads_;  ///< storage.pool.prefetch_loads
  Counter* m_prefetch_hits_;   ///< storage.pool.prefetch_hits
  Gauge* m_frames_;  ///< storage.pool.frames: current resident frame count
};

/// A readable (and for transaction shadow pages, writable) view of one page.
///
/// Four flavors share this one type so callers are agnostic:
///  - FetchHandle(): shares ownership of a committed pool buffer (owner_
///    set, frame_ null) — safe across concurrent Install/eviction.
///  - Borrowed(): a non-owning view of a transaction's private shadow page
///    (only data_/id_ set) — lifetime bounded by the transaction.
///  - Shared(): shares ownership of an engine-provided buffer (pending
///    group-commit images) — same lifetime guarantees as FetchHandle().
///  - legacy pinned mode (pool_ + frame_): RAII Unpin on release.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(BufferPool* pool, BufferPool::Frame* frame)
      : pool_(pool),
        frame_(frame),
        data_(frame != nullptr ? frame->data.get() : nullptr),
        id_(frame != nullptr ? frame->id : kInvalidPageId) {}
  ~PageHandle() { Release(); }

  /// A non-owning view (transaction shadow pages). The caller guarantees
  /// `data` outlives the handle.
  static PageHandle Borrowed(PageId id, char* data) {
    PageHandle h;
    h.id_ = id;
    h.data_ = data;
    return h;
  }

  /// A shared-ownership view of a buffer that is not (or not yet) a pool
  /// frame — e.g. a committed-but-unsynced group-commit image. The handle
  /// keeps the buffer alive on its own.
  static PageHandle Shared(PageId id, std::shared_ptr<char[]> data) {
    PageHandle h;
    h.id_ = id;
    h.owner_ = std::move(data);
    h.data_ = h.owner_.get();
    return h;
  }

  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  PageHandle(PageHandle&& other) noexcept { MoveFrom(other); }
  PageHandle& operator=(PageHandle&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(other);
    }
    return *this;
  }

  bool valid() const { return data_ != nullptr; }
  PageId id() const { return id_; }
  const char* data() const { return data_; }
  char* mutable_data() { return data_; }
  BufferPool::Frame* frame() { return frame_; }

  void Release() {
    if (frame_ != nullptr && pool_ != nullptr) {
      pool_->Unpin(frame_);
    }
    pool_ = nullptr;
    frame_ = nullptr;
    owner_.reset();
    data_ = nullptr;
    id_ = kInvalidPageId;
  }

 private:
  friend class BufferPool;

  void MoveFrom(PageHandle& other) {
    pool_ = other.pool_;
    frame_ = other.frame_;
    owner_ = std::move(other.owner_);
    data_ = other.data_;
    id_ = other.id_;
    other.pool_ = nullptr;
    other.frame_ = nullptr;
    other.data_ = nullptr;
    other.id_ = kInvalidPageId;
  }

  BufferPool* pool_ = nullptr;
  BufferPool::Frame* frame_ = nullptr;   ///< Legacy pinned mode only.
  std::shared_ptr<char[]> owner_;        ///< Shared-buffer modes.
  char* data_ = nullptr;
  PageId id_ = kInvalidPageId;
};

}  // namespace ode

#endif  // ODE_STORAGE_BUFFER_POOL_H_
