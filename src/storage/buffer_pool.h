#ifndef ODE_STORAGE_BUFFER_POOL_H_
#define ODE_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "storage/page.h"
#include "storage/pager.h"
#include "util/metrics.h"
#include "util/status.h"

namespace ode {

/// A fixed-capacity (growable under pressure) page cache over the Pager with
/// pin counts and true LRU eviction (recency list maintained on every
/// fetch; victims found from the cold end in O(evictable distance)).
///
/// Flushing discipline: a frame whose `dirty` flag is set differs from the
/// database file. A dirty frame may only be written back when `flushable` is
/// also set — the StorageEngine clears `flushable` while the page belongs to
/// an uncommitted transaction (no-steal policy) and sets it at commit.
class BufferPool {
 public:
  struct Frame {
    PageId id = kInvalidPageId;
    int pins = 0;
    bool dirty = false;      ///< Frame content differs from the db file.
    bool flushable = true;   ///< May be written back (committed content).
    std::list<PageId>::iterator lru_pos;  ///< Position in the recency list.
    std::unique_ptr<char[]> data;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t flushes = 0;
    uint64_t grows = 0;  ///< Times the pool exceeded capacity under pressure.
    uint64_t read_errors = 0;  ///< Misses whose page read failed (no frame
                               ///< is cached; the pool stays consistent).
  };

  /// `metrics` mirrors the Stats struct into `storage.pool.*` registry
  /// counters; nullptr means the global registry.
  BufferPool(Pager* pager, size_t capacity_pages,
             MetricsRegistry* metrics = nullptr);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins the frame holding `id`, loading it from the pager on a miss.
  /// The caller must Unpin() exactly once per successful Fetch.
  Status Fetch(PageId id, Frame** frame);

  void Unpin(Frame* frame);

  /// Writes back every dirty+flushable frame; clears their dirty flags.
  Status FlushAll();

  /// Writes back one frame if dirty (must be flushable).
  Status FlushFrame(Frame* frame);

  /// Drops an unpinned clean frame from the pool if cached (test helper).
  void Evict(PageId id);

  /// Evicts LRU frames (flushing dirty ones) until the pool is back within
  /// capacity. Called after commit/abort releases the no-steal pins that
  /// forced the pool to grow.
  Status ShrinkToCapacity();

  size_t capacity() const { return capacity_; }
  size_t size() const { return frames_.size(); }
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

 private:
  /// Makes room for one more frame if at capacity. Grows the pool when every
  /// frame is pinned or unflushable.
  Status EnsureRoom();

  /// Evicts the least-recently-used evictable frame; sets *evicted=false if
  /// every frame is pinned or unflushable.
  Status EvictOne(bool* evicted);

  void RemoveFrame(Frame* frame);

  Pager* pager_;
  size_t capacity_;
  std::unordered_map<PageId, std::unique_ptr<Frame>> frames_;
  /// Recency order: front = most recently used, back = LRU victim side.
  std::list<PageId> lru_;
  Stats stats_;
  // Registry mirrors of Stats (storage.pool.*, see docs/OBSERVABILITY.md).
  Counter* m_hits_;
  Counter* m_misses_;
  Counter* m_evictions_;
  Counter* m_flushes_;
  Counter* m_grows_;
  Counter* m_read_errors_;
  Gauge* m_frames_;  ///< storage.pool.frames: current resident frame count
};

/// RAII pin on a buffer-pool frame.
class PageHandle {
 public:
  PageHandle() : pool_(nullptr), frame_(nullptr) {}
  PageHandle(BufferPool* pool, BufferPool::Frame* frame)
      : pool_(pool), frame_(frame) {}
  ~PageHandle() { Release(); }

  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  PageHandle(PageHandle&& other) noexcept
      : pool_(other.pool_), frame_(other.frame_) {
    other.pool_ = nullptr;
    other.frame_ = nullptr;
  }
  PageHandle& operator=(PageHandle&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = other.pool_;
      frame_ = other.frame_;
      other.pool_ = nullptr;
      other.frame_ = nullptr;
    }
    return *this;
  }

  bool valid() const { return frame_ != nullptr; }
  PageId id() const { return frame_->id; }
  const char* data() const { return frame_->data.get(); }
  char* mutable_data() { return frame_->data.get(); }
  BufferPool::Frame* frame() { return frame_; }

  void Release() {
    if (frame_ != nullptr) {
      pool_->Unpin(frame_);
      frame_ = nullptr;
      pool_ = nullptr;
    }
  }

 private:
  BufferPool* pool_;
  BufferPool::Frame* frame_;
};

}  // namespace ode

#endif  // ODE_STORAGE_BUFFER_POOL_H_
