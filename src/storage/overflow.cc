#include "storage/overflow.h"

#include <cstring>

#include "util/coding.h"

namespace ode {
namespace overflow {

namespace {
constexpr uint32_t kNextOffset = 4;
constexpr uint32_t kLenOffset = 8;
constexpr uint32_t kDataOffset = 12;
}  // namespace

Status WriteChain(StorageEngine* engine, const Slice& data, PageId* first) {
  *first = kInvalidPageId;
  if (data.empty()) {
    return Status::InvalidArgument("empty overflow chain");
  }
  size_t remaining = data.size();
  const char* cursor = data.data();
  PageId prev = kInvalidPageId;
  PageHandle prev_handle;
  while (remaining > 0) {
    PageId page;
    PageHandle handle;
    ODE_RETURN_IF_ERROR(engine->AllocPage(&page, &handle));
    char* buf = handle.mutable_data();
    buf[0] = static_cast<char>(PageType::kOverflow);
    EncodeFixed32(buf + kNextOffset, kInvalidPageId);
    const uint32_t chunk = remaining > kOverflowPayload
                               ? kOverflowPayload
                               : static_cast<uint32_t>(remaining);
    EncodeFixed32(buf + kLenOffset, chunk);
    memcpy(buf + kDataOffset, cursor, chunk);
    cursor += chunk;
    remaining -= chunk;
    if (prev == kInvalidPageId) {
      *first = page;
    } else {
      EncodeFixed32(prev_handle.mutable_data() + kNextOffset, page);
    }
    prev = page;
    prev_handle = std::move(handle);
  }
  return Status::OK();
}

Status ReadChain(StorageEngine* engine, PageId first, std::string* out) {
  out->clear();
  PageId page = first;
  while (page != kInvalidPageId) {
    PageHandle handle;
    ODE_RETURN_IF_ERROR(engine->GetPageRead(page, &handle));
    const char* buf = handle.data();
    if (static_cast<PageType>(buf[0]) != PageType::kOverflow) {
      return Status::Corruption("overflow chain hit non-overflow page " +
                                std::to_string(page));
    }
    const uint32_t len = DecodeFixed32(buf + kLenOffset);
    if (len > kOverflowPayload) {
      return Status::Corruption("overflow page length out of range");
    }
    out->append(buf + kDataOffset, len);
    page = DecodeFixed32(buf + kNextOffset);
  }
  return Status::OK();
}

Status FreeChain(StorageEngine* engine, PageId first) {
  PageId page = first;
  while (page != kInvalidPageId) {
    PageId next;
    {
      PageHandle handle;
      ODE_RETURN_IF_ERROR(engine->GetPageRead(page, &handle));
      if (static_cast<PageType>(handle.data()[0]) != PageType::kOverflow) {
        return Status::Corruption("overflow chain hit non-overflow page " +
                                  std::to_string(page));
      }
      next = DecodeFixed32(handle.data() + kNextOffset);
    }
    ODE_RETURN_IF_ERROR(engine->FreePage(page));
    page = next;
  }
  return Status::OK();
}

Status ListChainPages(StorageEngine* engine, PageId first,
                      std::vector<PageId>* pages) {
  pages->clear();
  PageId page = first;
  while (page != kInvalidPageId) {
    PageHandle handle;
    ODE_RETURN_IF_ERROR(engine->GetPageRead(page, &handle));
    if (static_cast<PageType>(handle.data()[0]) != PageType::kOverflow) {
      return Status::Corruption("overflow chain hit non-overflow page " +
                                std::to_string(page));
    }
    pages->push_back(page);
    if (pages->size() > 1u << 22) {
      return Status::Corruption("overflow chain cycle suspected");
    }
    page = DecodeFixed32(handle.data() + kNextOffset);
  }
  return Status::OK();
}

}  // namespace overflow
}  // namespace ode
