#ifndef ODE_STORAGE_RECOVERY_H_
#define ODE_STORAGE_RECOVERY_H_

#include <cstdint>

#include "storage/pager.h"
#include "storage/wal.h"
#include "util/status.h"

namespace ode {

struct RecoveryStats {
  uint64_t committed_txns = 0;
  uint64_t pages_replayed = 0;
  uint64_t records_scanned = 0;
  /// Damaged records discarded from the tail of the log (a crash mid-append
  /// tears at most the last commit's records, so this is expected; damage
  /// *followed by* valid records is corruption and fails recovery instead).
  uint64_t torn_tail_records = 0;
};

/// Crash recovery for the redo-only WAL.
///
/// Pass 1 scans the log and collects the set of transactions with a commit
/// record. Pass 2 rescans and writes the page images of committed
/// transactions, in log order, straight to the database file. Finally the
/// file is synced and the log truncated. Page images are full after-images,
/// so replay is idempotent and the last write of each page wins.
///
/// A short or checksum-failing record ends the scan. If nothing decodable
/// follows it, it is the torn tail of the commit that was in flight when the
/// crash hit: recovery discards it (counted in torn_tail_records) and
/// succeeds. If a valid record *does* follow the damage, the log is corrupt
/// in the middle — silently skipping records there could replay a later
/// transaction without an earlier one it depends on — so recovery returns
/// Corruption and leaves both files untouched.
Status RunRecovery(Pager* pager, Wal* wal, RecoveryStats* stats);

}  // namespace ode

#endif  // ODE_STORAGE_RECOVERY_H_
