#ifndef ODE_STORAGE_RECOVERY_H_
#define ODE_STORAGE_RECOVERY_H_

#include <cstdint>

#include "storage/pager.h"
#include "storage/wal.h"
#include "util/status.h"

namespace ode {

struct RecoveryStats {
  uint64_t committed_txns = 0;
  uint64_t pages_replayed = 0;
  uint64_t records_scanned = 0;
};

/// Crash recovery for the redo-only WAL.
///
/// Pass 1 scans the log and collects the set of transactions with a commit
/// record. Pass 2 rescans and writes the page images of committed
/// transactions, in log order, straight to the database file. Finally the
/// file is synced and the log truncated. Page images are full after-images,
/// so replay is idempotent and the last write of each page wins.
Status RunRecovery(Pager* pager, Wal* wal, RecoveryStats* stats);

}  // namespace ode

#endif  // ODE_STORAGE_RECOVERY_H_
