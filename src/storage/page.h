#ifndef ODE_STORAGE_PAGE_H_
#define ODE_STORAGE_PAGE_H_

#include <cstdint>

namespace ode {

/// Size of every on-disk page. The database file is an array of such pages;
/// page 0 is the superblock.
inline constexpr uint32_t kPageSize = 4096;

/// Identifies a page by its index in the database file.
using PageId = uint32_t;

/// Sentinel for "no page".
inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// The superblock page id.
inline constexpr PageId kSuperblockPageId = 0;

/// On-disk page type tags (first byte of typed pages). Raw consumers such as
/// overflow chains use their own tag so corruption is detectable.
enum class PageType : uint8_t {
  kFree = 0,
  kSuperblock = 1,
  kSlotted = 2,       ///< Variable-length record page (objects, catalog).
  kObjectTable = 3,   ///< Object-table entry page.
  kTableRoot = 4,     ///< Object-table root/directory page.
  kOverflow = 5,      ///< Large-record overflow chain page.
  kBTreeLeaf = 6,
  kBTreeInternal = 7,
  kBlob = 8,          ///< Catalog blob chain page.
  kIndexRoot = 9,     ///< Index root-pointer page (holds the B-tree root id).
};

/// Superblock layout (offsets within page 0).
///
///   [0..7]    magic "ODEDB001"
///   [8..11]   format version (u32)
///   [12..15]  page_count (u32)      -- pages allocated in the file
///   [16..19]  free_list_head (u32)  -- head of free page list
///   [20..23]  catalog_root (u32)    -- first page of the catalog blob chain
///   [24..31]  next_txn_id (u64)
///   [32..39]  next_trigger_id (u64)
///   [40..47]  commit_seq (u64)      -- publish sequence high-water mark;
///                                      MVCC version stamps must never exceed
///                                      a reopened engine's starting seq
struct SuperblockLayout {
  static constexpr uint32_t kMagicOffset = 0;
  static constexpr uint32_t kVersionOffset = 8;
  static constexpr uint32_t kPageCountOffset = 12;
  static constexpr uint32_t kFreeListOffset = 16;
  static constexpr uint32_t kCatalogRootOffset = 20;
  static constexpr uint32_t kNextTxnIdOffset = 24;
  static constexpr uint32_t kNextTriggerIdOffset = 32;
  static constexpr uint32_t kCommitSeqOffset = 40;
};

inline constexpr char kSuperblockMagic[8] = {'O', 'D', 'E', 'D',
                                             'B', '0', '0', '1'};
inline constexpr uint32_t kFormatVersion = 1;

}  // namespace ode

#endif  // ODE_STORAGE_PAGE_H_
