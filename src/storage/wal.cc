#include "storage/wal.h"

#include <cstring>

#include "util/coding.h"
#include "util/crc32c.h"

namespace ode {

namespace {
constexpr size_t kHeaderSize = 8;  // len u32 + crc u32
}  // namespace

Wal::Wal(std::unique_ptr<File> file, SyncMode mode, uint64_t write_offset,
         MetricsRegistry* metrics)
    : file_(std::move(file)), sync_mode_(mode), write_offset_(write_offset) {
  MetricsRegistry& m = metrics != nullptr ? *metrics : MetricsRegistry::Global();
  appends_ = m.GetCounter("storage.wal.appends");
  appended_bytes_ = m.GetCounter("storage.wal.appended_bytes");
  fsyncs_ = m.GetCounter("storage.wal.fsyncs");
  fsync_errors_ = m.GetCounter("storage.wal.fsync_errors");
  size_gauge_ = m.GetGauge("storage.wal.bytes");
  size_gauge_->Set(static_cast<int64_t>(write_offset_));
}

Status Wal::Open(Env* env, const std::string& path, SyncMode mode,
                 std::unique_ptr<Wal>* out, MetricsRegistry* metrics) {
  std::unique_ptr<File> file;
  ODE_RETURN_IF_ERROR(env->NewFile(path, &file));
  ODE_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  out->reset(new Wal(std::move(file), mode, size, metrics));
  return Status::OK();
}

Status Wal::AppendRecord(RecordType type, TxnId txn, const Slice& payload) {
  buffer_.clear();
  buffer_.reserve(kHeaderSize + 9 + payload.size());
  // Body: type + txn_id + payload.
  std::string body;
  body.reserve(9 + payload.size());
  body.push_back(static_cast<char>(type));
  PutFixed64(&body, txn);
  body.append(payload.data(), payload.size());

  PutFixed32(&buffer_, static_cast<uint32_t>(body.size()));
  PutFixed32(&buffer_, crc32c::Mask(crc32c::Value(body.data(), body.size())));
  buffer_.append(body);

  ODE_RETURN_IF_ERROR(file_->Write(write_offset_, buffer_));
  write_offset_ += buffer_.size();
  appends_->Add();
  appended_bytes_->Add(buffer_.size());
  size_gauge_->Set(static_cast<int64_t>(write_offset_));
  return Status::OK();
}

Status Wal::AppendPageImage(TxnId txn, PageId page, const char* image) {
  std::string payload;
  payload.reserve(4 + kPageSize);
  PutFixed32(&payload, page);
  payload.append(image, kPageSize);
  return AppendRecord(RecordType::kPageImage, txn, payload);
}

Status Wal::AppendCommit(TxnId txn) {
  ODE_RETURN_IF_ERROR(AppendRecord(RecordType::kCommit, txn, Slice()));
  if (sync_mode_ == SyncMode::kSyncEveryCommit) {
    return Sync();
  }
  return Status::OK();
}

Status Wal::AppendCommitRecord(TxnId txn) {
  return AppendRecord(RecordType::kCommit, txn, Slice());
}

Status Wal::Sync() {
  // Count only successful syncs: a failed fdatasync made nothing durable,
  // and inflating the counter would skew commits-per-fsync arithmetic.
  Status s = file_->Sync();
  if (s.ok()) {
    fsyncs_->Add();
  } else {
    fsync_errors_->Add();
  }
  return s;
}

Status Wal::Reset() {
  ODE_RETURN_IF_ERROR(file_->Truncate(0));
  Status synced = file_->Sync();
  if (!synced.ok()) {
    fsync_errors_->Add();
    return synced;
  }
  fsyncs_->Add();
  write_offset_ = 0;
  size_gauge_->Set(0);
  return Status::OK();
}

Status Wal::TruncateTo(uint64_t offset) {
  ODE_RETURN_IF_ERROR(file_->Truncate(offset));
  write_offset_ = offset;
  size_gauge_->Set(static_cast<int64_t>(offset));
  return Status::OK();
}

Status Wal::Reader::Next(Record* record, std::string* scratch, bool* eof) {
  *eof = false;
  tail_ = TailState::kNone;
  torn_resync_offset_ = 0;
  char header[kHeaderSize];
  size_t n = 0;
  ODE_RETURN_IF_ERROR(file_->ReadAtMost(offset_, kHeaderSize, header, &n));
  if (n < kHeaderSize) {
    *eof = true;
    tail_ = n == 0 ? TailState::kCleanEof : TailState::kTorn;
    return Status::OK();
  }
  const uint32_t len = DecodeFixed32(header);
  const uint32_t expected_crc = crc32c::Unmask(DecodeFixed32(header + 4));
  if (len < 9 || len > 16u * 1024 * 1024) {
    *eof = true;  // Corrupt length: cannot even locate the next record.
    tail_ = TailState::kTorn;
    return Status::OK();
  }
  scratch->resize(len);
  ODE_RETURN_IF_ERROR(
      file_->ReadAtMost(offset_ + kHeaderSize, len, scratch->data(), &n));
  if (n < len) {
    *eof = true;  // Torn record: body runs past end of file.
    tail_ = TailState::kTorn;
    return Status::OK();
  }
  // The body is fully present from here on, so any damage is skippable:
  // whatever follows this record starts at a known offset.
  if (crc32c::Value(scratch->data(), len) != expected_crc) {
    *eof = true;
    tail_ = TailState::kTorn;
    torn_resync_offset_ = offset_ + kHeaderSize + len;
    return Status::OK();
  }
  Slice body(*scratch);
  record->type = static_cast<RecordType>(body[0]);
  body.remove_prefix(1);
  uint64_t txn;
  if (!GetFixed64(&body, &txn)) {
    *eof = true;
    tail_ = TailState::kTorn;
    torn_resync_offset_ = offset_ + kHeaderSize + len;
    return Status::OK();
  }
  record->txn_id = txn;
  switch (record->type) {
    case RecordType::kPageImage: {
      uint32_t page;
      if (!GetFixed32(&body, &page) || body.size() != kPageSize) {
        *eof = true;
        tail_ = TailState::kTorn;
        torn_resync_offset_ = offset_ + kHeaderSize + len;
        return Status::OK();
      }
      record->page_id = page;
      record->image = body;
      break;
    }
    case RecordType::kCommit:
      record->page_id = kInvalidPageId;
      record->image = Slice();
      break;
    default:
      *eof = true;  // Unknown record type: stop.
      tail_ = TailState::kTorn;
      torn_resync_offset_ = offset_ + kHeaderSize + len;
      return Status::OK();
  }
  offset_ += kHeaderSize + len;
  return Status::OK();
}

}  // namespace ode
