#include "objstore/object_table.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/coding.h"

namespace ode {

namespace {

// Root page layout:
//   [0]      page type
//   [1..3]   pad
//   [4..7]   num_entries u32     (first root only)
//   [8..11]  free_entry_head u32 (first root only)
//   [12..15] current_data_page u32 (first root only)
//   [16..19] dir_count u32       (entry-page ids stored in THIS root page)
//   [20..23] next_root u32
//   [24..]   entry-page ids (u32 each)
constexpr uint32_t kNumEntriesOff = 4;
constexpr uint32_t kFreeHeadOff = 8;
constexpr uint32_t kCurrentDataOff = 12;
constexpr uint32_t kDirCountOff = 16;
constexpr uint32_t kNextRootOff = 20;
constexpr uint32_t kDirStartOff = 24;
constexpr uint32_t kDirCap = (kPageSize - kDirStartOff) / 4;  // ids per root

// Entry page layout: [0] type, [1..7] pad, entries from byte 8.
constexpr uint32_t kEntryStart = 8;
constexpr uint32_t kEntrySize = 32;
constexpr uint32_t kEntriesPerPage = (kPageSize - kEntryStart) / kEntrySize;

void EncodeEntry(char* dst, const ObjectTable::Entry& e) {
  EncodeFixed32(dst + 0, e.page);
  EncodeFixed16(dst + 4, e.slot);
  EncodeFixed16(dst + 6, e.flags);
  EncodeFixed32(dst + 8, e.type_code);
  EncodeFixed32(dst + 12, e.prev_version);
  EncodeFixed32(dst + 16, e.vnum);
  EncodeFixed32(dst + 20, e.parent_vnum);
  EncodeFixed64(dst + 24, e.commit_seq);
}

void DecodeEntry(const char* src, ObjectTable::Entry* e) {
  e->page = DecodeFixed32(src + 0);
  e->slot = DecodeFixed16(src + 4);
  e->flags = DecodeFixed16(src + 6);
  e->type_code = DecodeFixed32(src + 8);
  e->prev_version = DecodeFixed32(src + 12);
  e->vnum = DecodeFixed32(src + 16);
  e->parent_vnum = DecodeFixed32(src + 20);
  e->commit_seq = DecodeFixed64(src + 24);
}

void InitRootPage(char* buf) {
  memset(buf, 0, kPageSize);
  buf[0] = static_cast<char>(PageType::kTableRoot);
  EncodeFixed32(buf + kNumEntriesOff, 0);
  EncodeFixed32(buf + kFreeHeadOff, kInvalidLocalOid);
  EncodeFixed32(buf + kCurrentDataOff, kInvalidPageId);
  EncodeFixed32(buf + kDirCountOff, 0);
  EncodeFixed32(buf + kNextRootOff, kInvalidPageId);
}

}  // namespace

Status ObjectTable::Create(StorageEngine* engine, PageId* root) {
  PageHandle handle;
  ODE_RETURN_IF_ERROR(engine->AllocPage(root, &handle));
  InitRootPage(handle.mutable_data());
  return Status::OK();
}

Status ObjectTable::Drop() {
  // Free all entry pages, then the root chain.
  PageId root = root_;
  while (root != kInvalidPageId) {
    uint32_t dir_count;
    PageId next;
    std::vector<PageId> entry_pages;
    {
      PageHandle handle;
      ODE_RETURN_IF_ERROR(engine_->GetPageRead(root, &handle));
      dir_count = DecodeFixed32(handle.data() + kDirCountOff);
      next = DecodeFixed32(handle.data() + kNextRootOff);
      for (uint32_t i = 0; i < dir_count; i++) {
        entry_pages.push_back(
            DecodeFixed32(handle.data() + kDirStartOff + 4 * i));
      }
    }
    for (PageId p : entry_pages) {
      ODE_RETURN_IF_ERROR(engine_->FreePage(p));
    }
    ODE_RETURN_IF_ERROR(engine_->FreePage(root));
    root = next;
  }
  return Status::OK();
}

Status ObjectTable::LocateEntryPage(LocalOid local, bool create,
                                    PageId* page) const {
  const uint32_t page_index = local / kEntriesPerPage;
  uint32_t roots_to_skip = page_index / kDirCap;
  const uint32_t dir_slot = page_index % kDirCap;

  PageId root = root_;
  while (true) {
    PageId next;
    {
      PageHandle handle;
      ODE_RETURN_IF_ERROR(engine_->GetPageRead(root, &handle));
      next = DecodeFixed32(handle.data() + kNextRootOff);
    }
    if (roots_to_skip == 0) break;
    if (next == kInvalidPageId) {
      if (!create) return Status::NotFound("object-table page out of range");
      PageId new_root;
      PageHandle fresh;
      ODE_RETURN_IF_ERROR(engine_->AllocPage(&new_root, &fresh));
      InitRootPage(fresh.mutable_data());
      fresh.Release();
      PageHandle handle;
      ODE_RETURN_IF_ERROR(engine_->GetPageWrite(root, &handle));
      EncodeFixed32(handle.mutable_data() + kNextRootOff, new_root);
      next = new_root;
    }
    root = next;
    roots_to_skip--;
  }

  // `root` is the directory page that owns dir_slot.
  uint32_t dir_count;
  {
    PageHandle handle;
    ODE_RETURN_IF_ERROR(engine_->GetPageRead(root, &handle));
    dir_count = DecodeFixed32(handle.data() + kDirCountOff);
    if (dir_slot < dir_count) {
      *page = DecodeFixed32(handle.data() + kDirStartOff + 4 * dir_slot);
      return Status::OK();
    }
  }
  if (!create) return Status::NotFound("object-table entry out of range");
  if (dir_slot != dir_count) {
    return Status::Corruption("non-contiguous object-table directory");
  }
  // Append a new entry page.
  PageId entry_page;
  {
    PageHandle fresh;
    ODE_RETURN_IF_ERROR(engine_->AllocPage(&entry_page, &fresh));
    memset(fresh.mutable_data(), 0, kPageSize);
    fresh.mutable_data()[0] = static_cast<char>(PageType::kObjectTable);
  }
  PageHandle handle;
  ODE_RETURN_IF_ERROR(engine_->GetPageWrite(root, &handle));
  EncodeFixed32(handle.mutable_data() + kDirStartOff + 4 * dir_slot,
                entry_page);
  EncodeFixed32(handle.mutable_data() + kDirCountOff, dir_count + 1);
  *page = entry_page;
  return Status::OK();
}

Status ObjectTable::AllocEntry(LocalOid* local) {
  // Try the free list first.
  uint32_t free_head;
  {
    PageHandle handle;
    ODE_RETURN_IF_ERROR(engine_->GetPageRead(root_, &handle));
    free_head = DecodeFixed32(handle.data() + kFreeHeadOff);
  }
  if (free_head != kInvalidLocalOid) {
    Entry entry;
    ODE_RETURN_IF_ERROR(GetEntry(free_head, &entry));
    // For freed entries, `page` stores the next free index.
    PageHandle handle;
    ODE_RETURN_IF_ERROR(engine_->GetPageWrite(root_, &handle));
    EncodeFixed32(handle.mutable_data() + kFreeHeadOff, entry.page);
    *local = free_head;
    return Status::OK();
  }
  // Extend the high-water mark.
  uint32_t num;
  {
    PageHandle handle;
    ODE_RETURN_IF_ERROR(engine_->GetPageRead(root_, &handle));
    num = DecodeFixed32(handle.data() + kNumEntriesOff);
  }
  PageId entry_page;
  ODE_RETURN_IF_ERROR(LocateEntryPage(num, /*create=*/true, &entry_page));
  (void)entry_page;
  PageHandle handle;
  ODE_RETURN_IF_ERROR(engine_->GetPageWrite(root_, &handle));
  EncodeFixed32(handle.mutable_data() + kNumEntriesOff, num + 1);
  *local = num;
  return Status::OK();
}

Status ObjectTable::FreeEntry(LocalOid local) {
  uint32_t free_head;
  {
    PageHandle handle;
    ODE_RETURN_IF_ERROR(engine_->GetPageRead(root_, &handle));
    free_head = DecodeFixed32(handle.data() + kFreeHeadOff);
  }
  Entry entry;  // zeroed: flags=0 marks it unallocated
  entry.page = free_head;
  entry.slot = 0;
  entry.flags = 0;
  entry.prev_version = kInvalidLocalOid;
  entry.parent_vnum = kNoParentVersion;
  ODE_RETURN_IF_ERROR(SetEntry(local, entry));
  PageHandle handle;
  ODE_RETURN_IF_ERROR(engine_->GetPageWrite(root_, &handle));
  EncodeFixed32(handle.mutable_data() + kFreeHeadOff, local);
  return Status::OK();
}

Status ObjectTable::GetEntry(LocalOid local, Entry* entry) const {
  PageId page;
  ODE_RETURN_IF_ERROR(LocateEntryPage(local, /*create=*/false, &page));
  PageHandle handle;
  ODE_RETURN_IF_ERROR(engine_->GetPageRead(page, &handle));
  const uint32_t offset = kEntryStart + (local % kEntriesPerPage) * kEntrySize;
  DecodeEntry(handle.data() + offset, entry);
  return Status::OK();
}

Status ObjectTable::SetEntry(LocalOid local, const Entry& entry) {
  PageId page;
  ODE_RETURN_IF_ERROR(LocateEntryPage(local, /*create=*/false, &page));
  PageHandle handle;
  ODE_RETURN_IF_ERROR(engine_->GetPageWrite(page, &handle));
  const uint32_t offset = kEntryStart + (local % kEntriesPerPage) * kEntrySize;
  EncodeEntry(handle.mutable_data() + offset, entry);
  return Status::OK();
}

Result<uint32_t> ObjectTable::NumEntries() const {
  PageHandle handle;
  ODE_RETURN_IF_ERROR(engine_->GetPageRead(root_, &handle));
  return DecodeFixed32(handle.data() + kNumEntriesOff);
}

Status ObjectTable::NextHead(LocalOid start, LocalOid* local, bool* found,
                             bool include_tombstones) const {
  ODE_ASSIGN_OR_RETURN(uint32_t num, NumEntries());
  for (LocalOid i = start; i < num; i++) {
    // Scan one entry page at a time to amortize the directory walk.
    PageId page;
    ODE_RETURN_IF_ERROR(LocateEntryPage(i, /*create=*/false, &page));
    PageHandle handle;
    ODE_RETURN_IF_ERROR(engine_->GetPageRead(page, &handle));
    const uint32_t first_on_page = (i / kEntriesPerPage) * kEntriesPerPage;
    const uint32_t end_on_page =
        std::min<uint32_t>(first_on_page + kEntriesPerPage, num);
    for (LocalOid j = i; j < end_on_page; j++) {
      const uint32_t offset =
          kEntryStart + (j % kEntriesPerPage) * kEntrySize;
      const uint16_t flags = DecodeFixed16(handle.data() + offset + 6);
      if ((flags & kFlagAllocated) && !(flags & kFlagVersion) &&
          (include_tombstones || !(flags & kFlagTombstone))) {
        *local = j;
        *found = true;
        return Status::OK();
      }
    }
    i = end_on_page - 1;  // Loop ++ moves to the next page's first entry.
  }
  *found = false;
  return Status::OK();
}

Status ObjectTable::ListStructurePages(std::vector<PageId>* root_pages,
                                       std::vector<PageId>* entry_pages) const {
  root_pages->clear();
  entry_pages->clear();
  PageId root = root_;
  while (root != kInvalidPageId) {
    root_pages->push_back(root);
    if (root_pages->size() > 1u << 20) {
      return Status::Corruption("object-table root chain cycle suspected");
    }
    PageHandle handle;
    ODE_RETURN_IF_ERROR(engine_->GetPageRead(root, &handle));
    const uint32_t dir_count = DecodeFixed32(handle.data() + kDirCountOff);
    for (uint32_t i = 0; i < dir_count && i < kDirCap; i++) {
      entry_pages->push_back(
          DecodeFixed32(handle.data() + kDirStartOff + 4 * i));
    }
    root = DecodeFixed32(handle.data() + kNextRootOff);
  }
  return Status::OK();
}

Status ObjectTable::ReleaseTrailingFreePages(uint32_t* released) {
  if (released != nullptr) *released = 0;
  uint32_t num;
  {
    PageHandle handle;
    ODE_RETURN_IF_ERROR(engine_->GetPageRead(root_, &handle));
    num = DecodeFixed32(handle.data() + kNumEntriesOff);
  }
  if (num == 0) return Status::OK();
  // New high-water mark: one past the last allocated entry.
  uint32_t new_num = 0;
  for (uint32_t i = num; i > 0; i--) {
    Entry entry;
    ODE_RETURN_IF_ERROR(GetEntry(i - 1, &entry));
    if (entry.allocated()) {
      new_num = i;
      break;
    }
  }
  const uint32_t old_pages = (num + kEntriesPerPage - 1) / kEntriesPerPage;
  const uint32_t new_pages = (new_num + kEntriesPerPage - 1) / kEntriesPerPage;
  if (new_pages == old_pages) {
    // No whole trailing page vacated; the free list keeps recycling the
    // interior slack in place.
    return Status::OK();
  }
  // 1. Filter the free list down to indices below the new mark BEFORE any
  //    page goes away — nodes on doomed pages would otherwise dangle.
  //    Indices in [new_num, num) need no list at all: they sit past the
  //    high-water mark and come back through plain extension.
  std::vector<LocalOid> kept;
  {
    LocalOid cur;
    {
      PageHandle handle;
      ODE_RETURN_IF_ERROR(engine_->GetPageRead(root_, &handle));
      cur = DecodeFixed32(handle.data() + kFreeHeadOff);
    }
    uint32_t walked = 0;
    while (cur != kInvalidLocalOid) {
      if (++walked > num) {
        return Status::Corruption("object-table free-list cycle suspected");
      }
      Entry entry;
      ODE_RETURN_IF_ERROR(GetEntry(cur, &entry));
      if (cur < new_num) kept.push_back(cur);
      cur = entry.page;  // For freed entries, `page` is the next free index.
    }
  }
  for (size_t i = 0; i < kept.size(); i++) {
    Entry entry;
    ODE_RETURN_IF_ERROR(GetEntry(kept[i], &entry));
    entry.page = (i + 1 < kept.size()) ? kept[i + 1] : kInvalidLocalOid;
    ODE_RETURN_IF_ERROR(SetEntry(kept[i], entry));
  }
  {
    PageHandle handle;
    ODE_RETURN_IF_ERROR(engine_->GetPageWrite(root_, &handle));
    EncodeFixed32(handle.mutable_data() + kFreeHeadOff,
                  kept.empty() ? kInvalidLocalOid : kept.front());
    EncodeFixed32(handle.mutable_data() + kNumEntriesOff, new_num);
  }
  // 2. Free the trailing entry pages, shrinking each root's directory.
  std::vector<PageId> roots;
  {
    PageId root = root_;
    while (root != kInvalidPageId) {
      roots.push_back(root);
      if (roots.size() > 1u << 20) {
        return Status::Corruption("object-table root chain cycle suspected");
      }
      PageHandle handle;
      ODE_RETURN_IF_ERROR(engine_->GetPageRead(root, &handle));
      root = DecodeFixed32(handle.data() + kNextRootOff);
    }
  }
  uint32_t freed = 0;
  for (size_t k = 0; k < roots.size(); k++) {
    const uint64_t first_page = static_cast<uint64_t>(k) * kDirCap;
    const uint32_t keep =
        first_page >= new_pages
            ? 0
            : std::min<uint32_t>(kDirCap,
                                 static_cast<uint32_t>(new_pages - first_page));
    uint32_t dir_count;
    std::vector<PageId> doomed;
    {
      PageHandle handle;
      ODE_RETURN_IF_ERROR(engine_->GetPageRead(roots[k], &handle));
      dir_count = DecodeFixed32(handle.data() + kDirCountOff);
      for (uint32_t i = keep; i < dir_count && i < kDirCap; i++) {
        doomed.push_back(DecodeFixed32(handle.data() + kDirStartOff + 4 * i));
      }
    }
    if (doomed.empty() && dir_count <= keep) continue;
    for (PageId p : doomed) {
      ODE_RETURN_IF_ERROR(engine_->FreePage(p));
      freed++;
    }
    PageHandle handle;
    ODE_RETURN_IF_ERROR(engine_->GetPageWrite(roots[k], &handle));
    EncodeFixed32(handle.mutable_data() + kDirCountOff, keep);
  }
  // 3. Unchain and free directory roots that went fully empty (the first
  //    root always stays — it carries the allocation state).
  const size_t last_keep =
      new_pages == 0 ? 0 : (new_pages - 1) / kDirCap;
  if (last_keep + 1 < roots.size()) {
    PageHandle handle;
    ODE_RETURN_IF_ERROR(engine_->GetPageWrite(roots[last_keep], &handle));
    EncodeFixed32(handle.mutable_data() + kNextRootOff, kInvalidPageId);
    handle.Release();
    for (size_t k = last_keep + 1; k < roots.size(); k++) {
      ODE_RETURN_IF_ERROR(engine_->FreePage(roots[k]));
      freed++;
    }
  }
  if (released != nullptr) *released = freed;
  return Status::OK();
}

Result<LocalOid> ObjectTable::GetFreeEntryHead() const {
  PageHandle handle;
  ODE_RETURN_IF_ERROR(engine_->GetPageRead(root_, &handle));
  return DecodeFixed32(handle.data() + kFreeHeadOff);
}

Result<PageId> ObjectTable::GetCurrentDataPage() const {
  PageHandle handle;
  ODE_RETURN_IF_ERROR(engine_->GetPageRead(root_, &handle));
  return DecodeFixed32(handle.data() + kCurrentDataOff);
}

Status ObjectTable::SetCurrentDataPage(PageId page) {
  PageHandle handle;
  ODE_RETURN_IF_ERROR(engine_->GetPageWrite(root_, &handle));
  EncodeFixed32(handle.mutable_data() + kCurrentDataOff, page);
  return Status::OK();
}

}  // namespace ode
