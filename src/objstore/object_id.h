#ifndef ODE_OBJSTORE_OBJECT_ID_H_
#define ODE_OBJSTORE_OBJECT_ID_H_

#include <cstdint>
#include <functional>
#include <string>

namespace ode {

/// Identifies a cluster (type extent, paper §2.5).
using ClusterId = uint32_t;

/// Identifies an object within its cluster's object table.
using LocalOid = uint32_t;

inline constexpr ClusterId kInvalidClusterId = 0xFFFFFFFFu;
inline constexpr LocalOid kInvalidLocalOid = 0xFFFFFFFFu;

/// Requests the current version of an object (a "generic" reference in the
/// paper's terms, §4). Specific versions are 0-based version numbers.
inline constexpr uint32_t kGenericVersion = 0xFFFFFFFFu;

/// A database-wide object identifier: the paper's "object id" that doubles
/// as a pointer to a persistent object (§2).
struct Oid {
  ClusterId cluster = kInvalidClusterId;
  LocalOid local = kInvalidLocalOid;

  bool valid() const { return cluster != kInvalidClusterId; }

  friend bool operator==(const Oid& a, const Oid& b) {
    return a.cluster == b.cluster && a.local == b.local;
  }
  friend bool operator!=(const Oid& a, const Oid& b) { return !(a == b); }
  friend bool operator<(const Oid& a, const Oid& b) {
    return a.cluster != b.cluster ? a.cluster < b.cluster : a.local < b.local;
  }

  std::string ToString() const {
    return "(" + std::to_string(cluster) + ":" + std::to_string(local) + ")";
  }

  /// Packs into a single 64-bit value (used as index payloads).
  uint64_t Pack() const {
    return (static_cast<uint64_t>(cluster) << 32) | local;
  }
  static Oid Unpack(uint64_t packed) {
    return Oid{static_cast<ClusterId>(packed >> 32),
               static_cast<LocalOid>(packed & 0xFFFFFFFFu)};
  }
};

inline constexpr Oid kInvalidOid{};

struct OidHash {
  size_t operator()(const Oid& oid) const {
    return std::hash<uint64_t>()(oid.Pack());
  }
};

}  // namespace ode

#endif  // ODE_OBJSTORE_OBJECT_ID_H_
