#include "objstore/object_store.h"

#include <algorithm>
#include <cstring>
#include <utility>
#include <vector>

#include "storage/overflow.h"
#include "storage/slotted_page.h"

namespace ode {

namespace {

/// Lock-free snapshot walks can race a concurrently publishing version-GC
/// commit (the walk spans pages; installs are per-page atomic). Freed
/// entries are detected by flag validation and the walk retried from the
/// head; the bound converts a genuinely corrupt chain into an error instead
/// of a livelock.
constexpr int kSnapshotRetryLimit = 8;

/// Defensive ceiling on chain hops (a cycle would otherwise spin forever).
constexpr uint32_t kSnapshotChainLimit = 1u << 20;

}  // namespace

Status ObjectStore::CreateTable(PageId* table_root) {
  return ObjectTable::Create(engine_, table_root);
}

Status ObjectStore::DropTable(PageId table_root) {
  // Physically purge every head (frees records and version chains,
  // including tombstones and retained images — the core layer gates cluster
  // drops on "no active snapshots", so nothing can still need them).
  ObjectTable purge_table(engine_, table_root);
  LocalOid at = 0;
  while (true) {
    LocalOid local;
    bool found = false;
    ODE_RETURN_IF_ERROR(NextHead(table_root, at, &local, &found,
                                 /*include_tombstones=*/true));
    if (!found) break;
    ODE_RETURN_IF_ERROR(PurgeObject(&purge_table, local));
    at = local + 1;
  }
  // The current insert page survives per-record deletion; release it.
  ObjectTable table(engine_, table_root);
  ODE_ASSIGN_OR_RETURN(PageId current, table.GetCurrentDataPage());
  if (current != kInvalidPageId) {
    ODE_RETURN_IF_ERROR(engine_->FreePage(current));
  }
  return table.Drop();
}

Status ObjectStore::WriteRecord(ObjectTable* table, const Slice& data,
                                ObjectTable::Entry* entry) {
  if (data.size() > kInlineRecordMax) {
    PageId first;
    ODE_RETURN_IF_ERROR(overflow::WriteChain(engine_, data, &first));
    entry->page = first;
    entry->slot = 0;
    entry->flags |= ObjectTable::kFlagOverflow;
    return Status::OK();
  }
  entry->flags &= static_cast<uint16_t>(~ObjectTable::kFlagOverflow);
  // Try the cluster's current insert page.
  ODE_ASSIGN_OR_RETURN(PageId current, table->GetCurrentDataPage());
  if (current != kInvalidPageId) {
    PageHandle handle;
    ODE_RETURN_IF_ERROR(engine_->GetPageWrite(current, &handle));
    uint16_t slot;
    if (SlottedPage::Insert(handle.mutable_data(), data, &slot)) {
      entry->page = current;
      entry->slot = slot;
      return Status::OK();
    }
  }
  // Start a fresh data page.
  PageId fresh;
  PageHandle handle;
  ODE_RETURN_IF_ERROR(engine_->AllocPage(&fresh, &handle));
  SlottedPage::Init(handle.mutable_data(), PageType::kSlotted, 0);
  uint16_t slot;
  if (!SlottedPage::Insert(handle.mutable_data(), data, &slot)) {
    return Status::Corruption("record does not fit an empty page");
  }
  handle.Release();
  ODE_RETURN_IF_ERROR(table->SetCurrentDataPage(fresh));
  entry->page = fresh;
  entry->slot = slot;
  return Status::OK();
}

Status ObjectStore::FreeRecord(ObjectTable* table,
                               const ObjectTable::Entry& entry) {
  if (entry.page == kInvalidPageId) return Status::OK();  // Tombstone.
  if (entry.overflow()) {
    return overflow::FreeChain(engine_, entry.page);
  }
  PageHandle handle;
  ODE_RETURN_IF_ERROR(engine_->GetPageWrite(entry.page, &handle));
  SlottedPage::Delete(handle.mutable_data(), entry.slot);
  // Reclaim fully-empty pages (but keep the current insert target).
  if (SlottedPage::SlotCount(handle.data()) == 0) {
    ODE_ASSIGN_OR_RETURN(PageId current, table->GetCurrentDataPage());
    if (entry.page != current) {
      handle.Release();
      return engine_->FreePage(entry.page);
    }
  }
  return Status::OK();
}

Status ObjectStore::ReadRecord(const ObjectTable::Entry& entry,
                               std::string* data) const {
  if (entry.overflow()) {
    return overflow::ReadChain(engine_, entry.page, data);
  }
  PageHandle handle;
  ODE_RETURN_IF_ERROR(engine_->GetPageRead(entry.page, &handle));
  Slice record;
  if (!SlottedPage::Read(handle.data(), entry.slot, &record)) {
    return Status::Corruption("missing record at page " +
                              std::to_string(entry.page) + " slot " +
                              std::to_string(entry.slot));
  }
  data->assign(record.data(), record.size());
  return Status::OK();
}

Status ObjectStore::Insert(PageId table_root, uint32_t type_code,
                           const Slice& data, LocalOid* local) {
  ObjectTable table(engine_, table_root);
  ODE_ASSIGN_OR_RETURN(const uint64_t stamp, engine_->WriteStampSeq());
  ODE_RETURN_IF_ERROR(table.AllocEntry(local));
  ObjectTable::Entry entry;
  entry.flags = ObjectTable::kFlagAllocated;
  entry.type_code = type_code;
  entry.prev_version = kInvalidLocalOid;
  entry.vnum = 0;
  entry.commit_seq = stamp;
  Status s = WriteRecord(&table, data, &entry);
  if (!s.ok()) {
    // Best-effort cleanup of the just-allocated slot; the write error is the
    // one the caller must see, and the abort path reclaims the page anyway.
    IgnoreStatus(table.FreeEntry(*local), "insert-cleanup-free-entry");
    return s;
  }
  return table.SetEntry(*local, entry);
}

Status ObjectStore::Read(PageId table_root, LocalOid local, uint32_t vnum,
                         std::string* data, uint32_t* type_code,
                         uint32_t* resolved_vnum) const {
  ObjectTable table(engine_, table_root);
  ObjectTable::Entry entry;
  ODE_RETURN_IF_ERROR(table.GetEntry(local, &entry));
  if (!entry.allocated() || entry.is_version() || entry.tombstone()) {
    return Status::NotFound("object " + std::to_string(local));
  }
  if (vnum != kGenericVersion && vnum > entry.vnum) {
    return Status::NotFound("version " + std::to_string(vnum) +
                            " of object " + std::to_string(local));
  }
  // Walk the version chain to the requested version.
  LocalOid at = local;
  while (vnum != kGenericVersion && entry.vnum != vnum) {
    at = entry.prev_version;
    if (at == kInvalidLocalOid) {
      return Status::NotFound("version " + std::to_string(vnum) +
                              " of object " + std::to_string(local) +
                              " (deleted)");
    }
    ODE_RETURN_IF_ERROR(table.GetEntry(at, &entry));
    if (entry.vnum < vnum && vnum != kGenericVersion) {
      return Status::NotFound("version " + std::to_string(vnum) +
                              " of object " + std::to_string(local) +
                              " (deleted)");
    }
  }
  if (type_code != nullptr) *type_code = entry.type_code;
  if (resolved_vnum != nullptr) *resolved_vnum = entry.vnum;
  return ReadRecord(entry, data);
}

Status ObjectStore::Update(PageId table_root, LocalOid local,
                           const Slice& data) {
  ObjectTable table(engine_, table_root);
  ODE_ASSIGN_OR_RETURN(const uint64_t stamp, engine_->WriteStampSeq());
  ObjectTable::Entry entry;
  ODE_RETURN_IF_ERROR(table.GetEntry(local, &entry));
  if (!entry.allocated() || entry.is_version() || entry.tombstone()) {
    return Status::NotFound("object " + std::to_string(local));
  }
  if (entry.commit_seq != stamp) {
    // First update of a committed object in this transaction: retain the
    // committed image on the version chain (same vnum, kFlagRetained) so
    // active snapshots keep resolving it, and give the head a fresh record
    // under this transaction's stamp. The version GC reclaims the retained
    // image once the watermark passes the new stamp.
    LocalOid retained;
    ODE_RETURN_IF_ERROR(table.AllocEntry(&retained));
    ObjectTable::Entry image = entry;
    image.flags |= ObjectTable::kFlagVersion | ObjectTable::kFlagRetained;
    ODE_RETURN_IF_ERROR(table.SetEntry(retained, image));
    ObjectTable::Entry new_head = entry;
    new_head.prev_version = retained;
    new_head.commit_seq = stamp;
    ODE_RETURN_IF_ERROR(WriteRecord(&table, data, &new_head));
    return table.SetEntry(local, new_head);
  }
  // The head record was written by this transaction (nothing else can see
  // it): rewrite it in place / relocate as before MVCC.
  const bool was_overflow = entry.overflow();
  const bool now_overflow = data.size() > kInlineRecordMax;
  if (!was_overflow && !now_overflow) {
    // Try updating in place on the same page.
    const PageId old_page = entry.page;
    PageHandle handle;
    ODE_RETURN_IF_ERROR(engine_->GetPageWrite(old_page, &handle));
    if (SlottedPage::Update(handle.mutable_data(), entry.slot, data)) {
      return Status::OK();
    }
    // No room: the slot was freed by the failed update; relocate.
    const bool old_page_empty = SlottedPage::SlotCount(handle.data()) == 0;
    handle.Release();
    ODE_RETURN_IF_ERROR(WriteRecord(&table, data, &entry));
    ODE_RETURN_IF_ERROR(table.SetEntry(local, entry));
    // Reclaim the old page if the eviction emptied it (and nothing else
    // still uses it).
    if (old_page_empty && entry.page != old_page) {
      ODE_ASSIGN_OR_RETURN(PageId current, table.GetCurrentDataPage());
      if (old_page != current) {
        ODE_RETURN_IF_ERROR(engine_->FreePage(old_page));
      }
    }
    return Status::OK();
  }
  // Representation change or overflow rewrite: free old, write new.
  ODE_RETURN_IF_ERROR(FreeRecord(&table, entry));
  ODE_RETURN_IF_ERROR(WriteRecord(&table, data, &entry));
  return table.SetEntry(local, entry);
}

Status ObjectStore::Delete(PageId table_root, LocalOid local) {
  ObjectTable table(engine_, table_root);
  ODE_ASSIGN_OR_RETURN(const uint64_t stamp, engine_->WriteStampSeq());
  ObjectTable::Entry entry;
  ODE_RETURN_IF_ERROR(table.GetEntry(local, &entry));
  if (!entry.allocated() || entry.is_version() || entry.tombstone()) {
    return Status::NotFound("object " + std::to_string(local));
  }
  LocalOid committed = local;
  ObjectTable::Entry committed_entry = entry;
  if (entry.commit_seq == stamp) {
    // Chain entries written by this transaction were never visible to any
    // snapshot; free them physically. They form a prefix of the chain (new
    // entries are always linked in above committed ones).
    ODE_RETURN_IF_ERROR(FreeRecord(&table, entry));
    committed = entry.prev_version;
    while (committed != kInvalidLocalOid) {
      ODE_RETURN_IF_ERROR(table.GetEntry(committed, &committed_entry));
      if (committed_entry.commit_seq != stamp) break;
      ODE_RETURN_IF_ERROR(FreeRecord(&table, committed_entry));
      const LocalOid next = committed_entry.prev_version;
      ODE_RETURN_IF_ERROR(table.FreeEntry(committed));
      committed = next;
    }
    if (committed == kInvalidLocalOid) {
      // Entirely written by this transaction: plain physical delete.
      return table.FreeEntry(local);
    }
  } else {
    // Retain the committed head image as a chain entry the tombstone
    // points at.
    ODE_RETURN_IF_ERROR(table.AllocEntry(&committed));
    ObjectTable::Entry image = entry;
    image.flags |= ObjectTable::kFlagVersion | ObjectTable::kFlagRetained;
    ODE_RETURN_IF_ERROR(table.SetEntry(committed, image));
  }
  // Tombstone the head: no record, chain kept for older snapshots; the
  // version GC purges everything once the watermark passes `stamp`.
  ObjectTable::Entry tomb = entry;
  tomb.flags = static_cast<uint16_t>(
      (entry.flags & ~ObjectTable::kFlagOverflow) | ObjectTable::kFlagTombstone);
  tomb.page = kInvalidPageId;
  tomb.slot = 0;
  tomb.prev_version = committed;
  tomb.commit_seq = stamp;
  return table.SetEntry(local, tomb);
}

Status ObjectStore::NewVersion(PageId table_root, LocalOid local,
                               uint32_t* new_vnum) {
  ObjectTable table(engine_, table_root);
  ODE_ASSIGN_OR_RETURN(const uint64_t stamp, engine_->WriteStampSeq());
  ObjectTable::Entry head;
  ODE_RETURN_IF_ERROR(table.GetEntry(local, &head));
  if (!head.allocated() || head.is_version() || head.tombstone()) {
    return Status::NotFound("object " + std::to_string(local));
  }
  // Freeze the current record under a new (non-head) entry. It keeps the
  // head's commit stamp: its content became visible when that commit
  // published, not now.
  LocalOid frozen;
  ODE_RETURN_IF_ERROR(table.AllocEntry(&frozen));
  ObjectTable::Entry frozen_entry = head;
  frozen_entry.flags |= ObjectTable::kFlagVersion;
  ODE_RETURN_IF_ERROR(table.SetEntry(frozen, frozen_entry));
  // Give the head a fresh copy of the record for the new current version.
  std::string data;
  ODE_RETURN_IF_ERROR(ReadRecord(head, &data));
  ObjectTable::Entry new_head = head;
  new_head.prev_version = frozen;
  new_head.vnum = head.vnum + 1;
  new_head.commit_seq = stamp;
  // Derivation: the new current's content comes from the version just
  // frozen (the frozen entry keeps the parent it already had).
  new_head.parent_vnum = head.vnum;
  ODE_RETURN_IF_ERROR(WriteRecord(&table, data, &new_head));
  ODE_RETURN_IF_ERROR(table.SetEntry(local, new_head));
  if (new_vnum != nullptr) *new_vnum = new_head.vnum;
  return Status::OK();
}

Status ObjectStore::DeleteVersion(PageId table_root, LocalOid local,
                                  uint32_t vnum) {
  ObjectTable table(engine_, table_root);
  ObjectTable::Entry head;
  ODE_RETURN_IF_ERROR(table.GetEntry(local, &head));
  if (!head.allocated() || head.is_version() || head.tombstone()) {
    return Status::NotFound("object " + std::to_string(local));
  }
  if (vnum > head.vnum) {
    return Status::NotFound("version " + std::to_string(vnum));
  }
  if (vnum == head.vnum) {
    // Deleting the current version promotes the previous user version;
    // retained pre-update images of the deleted version go with it.
    LocalOid promote_local = head.prev_version;
    ObjectTable::Entry promote;
    std::vector<std::pair<LocalOid, ObjectTable::Entry>> images;
    while (promote_local != kInvalidLocalOid) {
      ODE_RETURN_IF_ERROR(table.GetEntry(promote_local, &promote));
      if (!promote.retained()) break;
      images.emplace_back(promote_local, promote);
      promote_local = promote.prev_version;
    }
    if (promote_local == kInvalidLocalOid) {
      return Status::InvalidArgument(
          "cannot delete the only version; use pdelete");
    }
    ODE_RETURN_IF_ERROR(FreeRecord(&table, head));
    for (const auto& [image_local, image] : images) {
      ODE_RETURN_IF_ERROR(FreeRecord(&table, image));
      ODE_RETURN_IF_ERROR(table.FreeEntry(image_local));
    }
    ObjectTable::Entry promoted = promote;
    promoted.flags &= static_cast<uint16_t>(~ObjectTable::kFlagVersion);
    ODE_RETURN_IF_ERROR(table.SetEntry(local, promoted));
    return table.FreeEntry(promote_local);
  }
  // Find the chain entry with `vnum` and its successor. Retained images
  // duplicate their version's vnum but always sit below the user entry, so
  // the first non-retained match is the one to unlink.
  LocalOid succ_local = local;
  ObjectTable::Entry succ = head;
  while (succ.prev_version != kInvalidLocalOid) {
    ObjectTable::Entry candidate;
    const LocalOid candidate_local = succ.prev_version;
    ODE_RETURN_IF_ERROR(table.GetEntry(candidate_local, &candidate));
    if (candidate.vnum == vnum && !candidate.retained()) {
      // Unlink candidate, then any retained images of the same version.
      succ.prev_version = candidate.prev_version;
      ODE_RETURN_IF_ERROR(table.SetEntry(succ_local, succ));
      ODE_RETURN_IF_ERROR(FreeRecord(&table, candidate));
      ODE_RETURN_IF_ERROR(table.FreeEntry(candidate_local));
      while (succ.prev_version != kInvalidLocalOid) {
        ObjectTable::Entry image;
        const LocalOid image_local = succ.prev_version;
        ODE_RETURN_IF_ERROR(table.GetEntry(image_local, &image));
        if (!image.retained() || image.vnum != vnum) break;
        succ.prev_version = image.prev_version;
        ODE_RETURN_IF_ERROR(table.SetEntry(succ_local, succ));
        ODE_RETURN_IF_ERROR(FreeRecord(&table, image));
        ODE_RETURN_IF_ERROR(table.FreeEntry(image_local));
      }
      return Status::OK();
    }
    if (candidate.vnum < vnum) break;  // Chain is descending; not found.
    succ_local = candidate_local;
    succ = candidate;
  }
  return Status::NotFound("version " + std::to_string(vnum) + " (deleted)");
}

Status ObjectStore::ListVersions(PageId table_root, LocalOid local,
                                 std::vector<uint32_t>* vnums) const {
  vnums->clear();
  ObjectTable table(engine_, table_root);
  ObjectTable::Entry entry;
  ODE_RETURN_IF_ERROR(table.GetEntry(local, &entry));
  if (!entry.allocated() || entry.is_version() || entry.tombstone()) {
    return Status::NotFound("object " + std::to_string(local));
  }
  while (true) {
    if (!entry.retained()) vnums->push_back(entry.vnum);
    if (entry.prev_version == kInvalidLocalOid) break;
    ODE_RETURN_IF_ERROR(table.GetEntry(entry.prev_version, &entry));
  }
  std::reverse(vnums->begin(), vnums->end());
  return Status::OK();
}

Status ObjectStore::RevertToVersion(PageId table_root, LocalOid local,
                                    uint32_t vnum) {
  std::string data;
  uint32_t type_code = 0, resolved = 0;
  ODE_RETURN_IF_ERROR(
      Read(table_root, local, vnum, &data, &type_code, &resolved));
  return Update(table_root, local, Slice(data));
}

Status ObjectStore::ListVersionTree(
    PageId table_root, LocalOid local,
    std::vector<std::pair<uint32_t, uint32_t>>* edges) const {
  edges->clear();
  ObjectTable table(engine_, table_root);
  ObjectTable::Entry entry;
  ODE_RETURN_IF_ERROR(table.GetEntry(local, &entry));
  if (!entry.allocated() || entry.is_version() || entry.tombstone()) {
    return Status::NotFound("object " + std::to_string(local));
  }
  while (true) {
    if (!entry.retained()) edges->emplace_back(entry.vnum, entry.parent_vnum);
    if (entry.prev_version == kInvalidLocalOid) break;
    ODE_RETURN_IF_ERROR(table.GetEntry(entry.prev_version, &entry));
  }
  std::reverse(edges->begin(), edges->end());
  return Status::OK();
}

Status ObjectStore::SetDerivation(PageId table_root, LocalOid local,
                                  uint32_t parent_vnum) {
  ObjectTable table(engine_, table_root);
  ObjectTable::Entry head;
  ODE_RETURN_IF_ERROR(table.GetEntry(local, &head));
  if (!head.allocated() || head.is_version() || head.tombstone()) {
    return Status::NotFound("object " + std::to_string(local));
  }
  head.parent_vnum = parent_vnum;
  return table.SetEntry(local, head);
}

Status ObjectStore::GetInfo(PageId table_root, LocalOid local,
                            ObjectTable::Entry* entry) const {
  ObjectTable table(engine_, table_root);
  ODE_RETURN_IF_ERROR(table.GetEntry(local, entry));
  if (!entry->allocated() || entry->tombstone()) {
    return Status::NotFound("object " + std::to_string(local));
  }
  return Status::OK();
}

Status ObjectStore::NextHead(PageId table_root, LocalOid start,
                             LocalOid* local, bool* found,
                             bool include_tombstones) const {
  ObjectTable table(engine_, table_root);
  return table.NextHead(start, local, found, include_tombstones);
}

Result<uint32_t> ObjectStore::NumEntries(PageId table_root) const {
  ObjectTable table(engine_, table_root);
  return table.NumEntries();
}

Status ObjectStore::ListEntryPages(PageId table_root,
                                   std::vector<PageId>* pages) const {
  ObjectTable table(engine_, table_root);
  std::vector<PageId> roots;
  return table.ListStructurePages(&roots, pages);
}

namespace {

/// One lock-free visibility walk (docs/CONCURRENCY.md "MVCC snapshot
/// reads"): newest chain entry with commit_seq <= snapshot_seq, then — for a
/// specific version — down to the first entry carrying that vnum (entries
/// below the visibility point all committed at or before the snapshot;
/// stamps are non-increasing down the chain). Returns Busy when the walk
/// steps onto a freed entry (concurrent version-GC publish); the caller
/// retries from the head.
Status ResolveSnapshotOnce(const ObjectTable& table, LocalOid local,
                           uint32_t vnum, uint64_t snapshot_seq,
                           ObjectTable::Entry* out) {
  ObjectTable::Entry entry;
  ODE_RETURN_IF_ERROR(table.GetEntry(local, &entry));
  if (!entry.allocated() || entry.is_version()) {
    // Head purged (its tombstone passed the GC watermark, which is <= every
    // active snapshot) or the index was never a head: nothing visible.
    return Status::NotFound("object " + std::to_string(local));
  }
  uint32_t steps = 0;
  while (entry.commit_seq > snapshot_seq) {
    const LocalOid prev = entry.prev_version;
    if (prev == kInvalidLocalOid) {
      return Status::NotFound("object " + std::to_string(local) +
                              " (created after snapshot)");
    }
    ODE_RETURN_IF_ERROR(table.GetEntry(prev, &entry));
    if (!entry.allocated() || !entry.is_version()) {
      return Status::Busy("snapshot walk raced a version-GC publish");
    }
    if (++steps > kSnapshotChainLimit) {
      return Status::Corruption("version chain exceeds sanity limit");
    }
  }
  if (entry.tombstone()) {
    return Status::NotFound("object " + std::to_string(local) +
                            " (deleted before snapshot)");
  }
  if (vnum != kGenericVersion) {
    if (vnum > entry.vnum) {
      return Status::NotFound("version " + std::to_string(vnum) +
                              " of object " + std::to_string(local));
    }
    while (entry.vnum != vnum) {
      if (entry.vnum < vnum || entry.prev_version == kInvalidLocalOid) {
        return Status::NotFound("version " + std::to_string(vnum) +
                                " of object " + std::to_string(local) +
                                " (deleted)");
      }
      ODE_RETURN_IF_ERROR(table.GetEntry(entry.prev_version, &entry));
      if (!entry.allocated() || !entry.is_version()) {
        return Status::Busy("snapshot walk raced a version-GC publish");
      }
      if (++steps > kSnapshotChainLimit) {
        return Status::Corruption("version chain exceeds sanity limit");
      }
    }
  }
  *out = entry;
  return Status::OK();
}

}  // namespace

Status ObjectStore::ResolveSnapshot(PageId table_root, LocalOid local,
                                    uint32_t vnum, uint64_t snapshot_seq,
                                    ObjectTable::Entry* entry) const {
  ObjectTable table(engine_, table_root);
  Status s;
  for (int attempt = 0; attempt < kSnapshotRetryLimit; ++attempt) {
    s = ResolveSnapshotOnce(table, local, vnum, snapshot_seq, entry);
    if (!s.IsBusy()) return s;
  }
  return s;
}

Status ObjectStore::ReadSnapshot(PageId table_root, LocalOid local,
                                 uint32_t vnum, uint64_t snapshot_seq,
                                 std::string* data, uint32_t* type_code,
                                 uint32_t* resolved_vnum) const {
  ObjectTable table(engine_, table_root);
  Status s;
  for (int attempt = 0; attempt < kSnapshotRetryLimit; ++attempt) {
    ObjectTable::Entry entry;
    s = ResolveSnapshotOnce(table, local, vnum, snapshot_seq, &entry);
    if (s.IsBusy()) continue;
    if (!s.ok()) return s;
    s = ReadRecord(entry, data);
    if (s.ok()) {
      if (type_code != nullptr) *type_code = entry.type_code;
      if (resolved_vnum != nullptr) *resolved_vnum = entry.vnum;
      return Status::OK();
    }
    // A Corruption here can be the same GC race one page later (record
    // freed between resolving the entry and reading it); retry resolves
    // against the post-GC chain.
  }
  return s;
}

Status ObjectStore::PurgeObject(ObjectTable* table, LocalOid local) {
  ObjectTable::Entry entry;
  ODE_RETURN_IF_ERROR(table->GetEntry(local, &entry));
  LocalOid at = local;
  while (true) {
    const LocalOid prev = entry.prev_version;
    ODE_RETURN_IF_ERROR(FreeRecord(table, entry));
    ODE_RETURN_IF_ERROR(table->FreeEntry(at));
    if (prev == kInvalidLocalOid) break;
    at = prev;
    ODE_RETURN_IF_ERROR(table->GetEntry(at, &entry));
  }
  return Status::OK();
}

Status ObjectStore::CollectGarbage(PageId table_root, uint64_t watermark,
                                   GcStats* stats) {
  ObjectTable table(engine_, table_root);
  LocalOid at = 0;
  while (true) {
    LocalOid local;
    bool found = false;
    ODE_RETURN_IF_ERROR(
        table.NextHead(at, &local, &found, /*include_tombstones=*/true));
    if (!found) break;
    at = local + 1;
    ObjectTable::Entry head;
    ODE_RETURN_IF_ERROR(table.GetEntry(local, &head));
    if (head.tombstone() && head.commit_seq <= watermark) {
      // The deletion is visible to every active and future snapshot; the
      // whole object can go.
      ODE_RETURN_IF_ERROR(PurgeObject(&table, local));
      if (stats != nullptr) stats->objects_reclaimed++;
      continue;
    }
    // Reclaim retained images whose successor committed at or before the
    // watermark: every snapshot that could still run stops its visibility
    // walk at or above that successor (stamps are non-increasing down the
    // chain), so the image below it is unreachable.
    LocalOid succ_local = local;
    ObjectTable::Entry succ = head;
    while (succ.prev_version != kInvalidLocalOid) {
      const LocalOid cand_local = succ.prev_version;
      ObjectTable::Entry cand;
      ODE_RETURN_IF_ERROR(table.GetEntry(cand_local, &cand));
      if (cand.retained() && succ.commit_seq <= watermark) {
        succ.prev_version = cand.prev_version;
        ODE_RETURN_IF_ERROR(table.SetEntry(succ_local, succ));
        ODE_RETURN_IF_ERROR(FreeRecord(&table, cand));
        ODE_RETURN_IF_ERROR(table.FreeEntry(cand_local));
        if (stats != nullptr) stats->versions_reclaimed++;
      } else {
        succ_local = cand_local;
        succ = cand;
      }
    }
  }
  // A mass delete can leave whole trailing entry pages holding nothing but
  // freed slots; hand them back instead of carrying the slack forever.
  uint32_t released = 0;
  ODE_RETURN_IF_ERROR(table.ReleaseTrailingFreePages(&released));
  if (stats != nullptr) stats->pages_reclaimed += released;
  return Status::OK();
}

}  // namespace ode
