#include "objstore/object_store.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "storage/overflow.h"
#include "storage/slotted_page.h"

namespace ode {

Status ObjectStore::CreateTable(PageId* table_root) {
  return ObjectTable::Create(engine_, table_root);
}

Status ObjectStore::DropTable(PageId table_root) {
  // Delete every head (frees records and version chains).
  LocalOid at = 0;
  while (true) {
    LocalOid local;
    bool found = false;
    ODE_RETURN_IF_ERROR(NextHead(table_root, at, &local, &found));
    if (!found) break;
    ODE_RETURN_IF_ERROR(Delete(table_root, local));
    at = local + 1;
  }
  // The current insert page survives per-record deletion; release it.
  ObjectTable table(engine_, table_root);
  ODE_ASSIGN_OR_RETURN(PageId current, table.GetCurrentDataPage());
  if (current != kInvalidPageId) {
    ODE_RETURN_IF_ERROR(engine_->FreePage(current));
  }
  return table.Drop();
}

Status ObjectStore::WriteRecord(ObjectTable* table, const Slice& data,
                                ObjectTable::Entry* entry) {
  if (data.size() > kInlineRecordMax) {
    PageId first;
    ODE_RETURN_IF_ERROR(overflow::WriteChain(engine_, data, &first));
    entry->page = first;
    entry->slot = 0;
    entry->flags |= ObjectTable::kFlagOverflow;
    return Status::OK();
  }
  entry->flags &= static_cast<uint16_t>(~ObjectTable::kFlagOverflow);
  // Try the cluster's current insert page.
  ODE_ASSIGN_OR_RETURN(PageId current, table->GetCurrentDataPage());
  if (current != kInvalidPageId) {
    PageHandle handle;
    ODE_RETURN_IF_ERROR(engine_->GetPageWrite(current, &handle));
    uint16_t slot;
    if (SlottedPage::Insert(handle.mutable_data(), data, &slot)) {
      entry->page = current;
      entry->slot = slot;
      return Status::OK();
    }
  }
  // Start a fresh data page.
  PageId fresh;
  PageHandle handle;
  ODE_RETURN_IF_ERROR(engine_->AllocPage(&fresh, &handle));
  SlottedPage::Init(handle.mutable_data(), PageType::kSlotted, 0);
  uint16_t slot;
  if (!SlottedPage::Insert(handle.mutable_data(), data, &slot)) {
    return Status::Corruption("record does not fit an empty page");
  }
  handle.Release();
  ODE_RETURN_IF_ERROR(table->SetCurrentDataPage(fresh));
  entry->page = fresh;
  entry->slot = slot;
  return Status::OK();
}

Status ObjectStore::FreeRecord(ObjectTable* table,
                               const ObjectTable::Entry& entry) {
  if (entry.overflow()) {
    return overflow::FreeChain(engine_, entry.page);
  }
  PageHandle handle;
  ODE_RETURN_IF_ERROR(engine_->GetPageWrite(entry.page, &handle));
  SlottedPage::Delete(handle.mutable_data(), entry.slot);
  // Reclaim fully-empty pages (but keep the current insert target).
  if (SlottedPage::SlotCount(handle.data()) == 0) {
    ODE_ASSIGN_OR_RETURN(PageId current, table->GetCurrentDataPage());
    if (entry.page != current) {
      handle.Release();
      return engine_->FreePage(entry.page);
    }
  }
  return Status::OK();
}

Status ObjectStore::ReadRecord(const ObjectTable::Entry& entry,
                               std::string* data) const {
  if (entry.overflow()) {
    return overflow::ReadChain(engine_, entry.page, data);
  }
  PageHandle handle;
  ODE_RETURN_IF_ERROR(engine_->GetPageRead(entry.page, &handle));
  Slice record;
  if (!SlottedPage::Read(handle.data(), entry.slot, &record)) {
    return Status::Corruption("missing record at page " +
                              std::to_string(entry.page) + " slot " +
                              std::to_string(entry.slot));
  }
  data->assign(record.data(), record.size());
  return Status::OK();
}

Status ObjectStore::Insert(PageId table_root, uint32_t type_code,
                           const Slice& data, LocalOid* local) {
  ObjectTable table(engine_, table_root);
  ODE_RETURN_IF_ERROR(table.AllocEntry(local));
  ObjectTable::Entry entry;
  entry.flags = ObjectTable::kFlagAllocated;
  entry.type_code = type_code;
  entry.prev_version = kInvalidLocalOid;
  entry.vnum = 0;
  Status s = WriteRecord(&table, data, &entry);
  if (!s.ok()) {
    // Best-effort cleanup of the just-allocated slot; the write error is the
    // one the caller must see, and the abort path reclaims the page anyway.
    IgnoreStatus(table.FreeEntry(*local), "insert-cleanup-free-entry");
    return s;
  }
  return table.SetEntry(*local, entry);
}

Status ObjectStore::Read(PageId table_root, LocalOid local, uint32_t vnum,
                         std::string* data, uint32_t* type_code,
                         uint32_t* resolved_vnum) const {
  ObjectTable table(engine_, table_root);
  ObjectTable::Entry entry;
  ODE_RETURN_IF_ERROR(table.GetEntry(local, &entry));
  if (!entry.allocated() || entry.is_version()) {
    return Status::NotFound("object " + std::to_string(local));
  }
  if (vnum != kGenericVersion && vnum > entry.vnum) {
    return Status::NotFound("version " + std::to_string(vnum) +
                            " of object " + std::to_string(local));
  }
  // Walk the version chain to the requested version.
  LocalOid at = local;
  while (vnum != kGenericVersion && entry.vnum != vnum) {
    at = entry.prev_version;
    if (at == kInvalidLocalOid) {
      return Status::NotFound("version " + std::to_string(vnum) +
                              " of object " + std::to_string(local) +
                              " (deleted)");
    }
    ODE_RETURN_IF_ERROR(table.GetEntry(at, &entry));
    if (entry.vnum < vnum && vnum != kGenericVersion) {
      return Status::NotFound("version " + std::to_string(vnum) +
                              " of object " + std::to_string(local) +
                              " (deleted)");
    }
  }
  if (type_code != nullptr) *type_code = entry.type_code;
  if (resolved_vnum != nullptr) *resolved_vnum = entry.vnum;
  return ReadRecord(entry, data);
}

Status ObjectStore::Update(PageId table_root, LocalOid local,
                           const Slice& data) {
  ObjectTable table(engine_, table_root);
  ObjectTable::Entry entry;
  ODE_RETURN_IF_ERROR(table.GetEntry(local, &entry));
  if (!entry.allocated() || entry.is_version()) {
    return Status::NotFound("object " + std::to_string(local));
  }
  const bool was_overflow = entry.overflow();
  const bool now_overflow = data.size() > kInlineRecordMax;
  if (!was_overflow && !now_overflow) {
    // Try updating in place on the same page.
    const PageId old_page = entry.page;
    PageHandle handle;
    ODE_RETURN_IF_ERROR(engine_->GetPageWrite(old_page, &handle));
    if (SlottedPage::Update(handle.mutable_data(), entry.slot, data)) {
      return Status::OK();
    }
    // No room: the slot was freed by the failed update; relocate.
    const bool old_page_empty = SlottedPage::SlotCount(handle.data()) == 0;
    handle.Release();
    ODE_RETURN_IF_ERROR(WriteRecord(&table, data, &entry));
    ODE_RETURN_IF_ERROR(table.SetEntry(local, entry));
    // Reclaim the old page if the eviction emptied it (and nothing else
    // still uses it).
    if (old_page_empty && entry.page != old_page) {
      ODE_ASSIGN_OR_RETURN(PageId current, table.GetCurrentDataPage());
      if (old_page != current) {
        ODE_RETURN_IF_ERROR(engine_->FreePage(old_page));
      }
    }
    return Status::OK();
  }
  // Representation change or overflow rewrite: free old, write new.
  ODE_RETURN_IF_ERROR(FreeRecord(&table, entry));
  ODE_RETURN_IF_ERROR(WriteRecord(&table, data, &entry));
  return table.SetEntry(local, entry);
}

Status ObjectStore::Delete(PageId table_root, LocalOid local) {
  ObjectTable table(engine_, table_root);
  ObjectTable::Entry entry;
  ODE_RETURN_IF_ERROR(table.GetEntry(local, &entry));
  if (!entry.allocated() || entry.is_version()) {
    return Status::NotFound("object " + std::to_string(local));
  }
  // Free the whole version chain.
  LocalOid at = local;
  while (true) {
    const LocalOid prev = entry.prev_version;
    ODE_RETURN_IF_ERROR(FreeRecord(&table, entry));
    ODE_RETURN_IF_ERROR(table.FreeEntry(at));
    if (prev == kInvalidLocalOid) break;
    at = prev;
    ODE_RETURN_IF_ERROR(table.GetEntry(at, &entry));
  }
  return Status::OK();
}

Status ObjectStore::NewVersion(PageId table_root, LocalOid local,
                               uint32_t* new_vnum) {
  ObjectTable table(engine_, table_root);
  ObjectTable::Entry head;
  ODE_RETURN_IF_ERROR(table.GetEntry(local, &head));
  if (!head.allocated() || head.is_version()) {
    return Status::NotFound("object " + std::to_string(local));
  }
  // Freeze the current record under a new (non-head) entry.
  LocalOid frozen;
  ODE_RETURN_IF_ERROR(table.AllocEntry(&frozen));
  ObjectTable::Entry frozen_entry = head;
  frozen_entry.flags |= ObjectTable::kFlagVersion;
  ODE_RETURN_IF_ERROR(table.SetEntry(frozen, frozen_entry));
  // Give the head a fresh copy of the record for the new current version.
  std::string data;
  ODE_RETURN_IF_ERROR(ReadRecord(head, &data));
  ObjectTable::Entry new_head = head;
  new_head.prev_version = frozen;
  new_head.vnum = head.vnum + 1;
  // Derivation: the new current's content comes from the version just
  // frozen (the frozen entry keeps the parent it already had).
  new_head.parent_vnum = head.vnum;
  ODE_RETURN_IF_ERROR(WriteRecord(&table, data, &new_head));
  ODE_RETURN_IF_ERROR(table.SetEntry(local, new_head));
  if (new_vnum != nullptr) *new_vnum = new_head.vnum;
  return Status::OK();
}

Status ObjectStore::DeleteVersion(PageId table_root, LocalOid local,
                                  uint32_t vnum) {
  ObjectTable table(engine_, table_root);
  ObjectTable::Entry head;
  ODE_RETURN_IF_ERROR(table.GetEntry(local, &head));
  if (!head.allocated() || head.is_version()) {
    return Status::NotFound("object " + std::to_string(local));
  }
  if (vnum > head.vnum) {
    return Status::NotFound("version " + std::to_string(vnum));
  }
  if (vnum == head.vnum) {
    // Deleting the current version promotes the previous one.
    if (head.prev_version == kInvalidLocalOid) {
      return Status::InvalidArgument(
          "cannot delete the only version; use pdelete");
    }
    ObjectTable::Entry prev;
    const LocalOid prev_local = head.prev_version;
    ODE_RETURN_IF_ERROR(table.GetEntry(prev_local, &prev));
    ODE_RETURN_IF_ERROR(FreeRecord(&table, head));
    ObjectTable::Entry promoted = prev;
    promoted.flags &= static_cast<uint16_t>(~ObjectTable::kFlagVersion);
    ODE_RETURN_IF_ERROR(table.SetEntry(local, promoted));
    return table.FreeEntry(prev_local);
  }
  // Find the chain entry with `vnum` and its successor.
  LocalOid succ_local = local;
  ObjectTable::Entry succ = head;
  while (succ.prev_version != kInvalidLocalOid) {
    ObjectTable::Entry candidate;
    const LocalOid candidate_local = succ.prev_version;
    ODE_RETURN_IF_ERROR(table.GetEntry(candidate_local, &candidate));
    if (candidate.vnum == vnum) {
      // Unlink candidate.
      succ.prev_version = candidate.prev_version;
      ODE_RETURN_IF_ERROR(table.SetEntry(succ_local, succ));
      ODE_RETURN_IF_ERROR(FreeRecord(&table, candidate));
      return table.FreeEntry(candidate_local);
    }
    if (candidate.vnum < vnum) break;  // Chain is descending; not found.
    succ_local = candidate_local;
    succ = candidate;
  }
  return Status::NotFound("version " + std::to_string(vnum) + " (deleted)");
}

Status ObjectStore::ListVersions(PageId table_root, LocalOid local,
                                 std::vector<uint32_t>* vnums) const {
  vnums->clear();
  ObjectTable table(engine_, table_root);
  ObjectTable::Entry entry;
  ODE_RETURN_IF_ERROR(table.GetEntry(local, &entry));
  if (!entry.allocated() || entry.is_version()) {
    return Status::NotFound("object " + std::to_string(local));
  }
  while (true) {
    vnums->push_back(entry.vnum);
    if (entry.prev_version == kInvalidLocalOid) break;
    ODE_RETURN_IF_ERROR(table.GetEntry(entry.prev_version, &entry));
  }
  std::reverse(vnums->begin(), vnums->end());
  return Status::OK();
}

Status ObjectStore::RevertToVersion(PageId table_root, LocalOid local,
                                    uint32_t vnum) {
  std::string data;
  uint32_t type_code = 0, resolved = 0;
  ODE_RETURN_IF_ERROR(
      Read(table_root, local, vnum, &data, &type_code, &resolved));
  return Update(table_root, local, Slice(data));
}

Status ObjectStore::ListVersionTree(
    PageId table_root, LocalOid local,
    std::vector<std::pair<uint32_t, uint32_t>>* edges) const {
  edges->clear();
  ObjectTable table(engine_, table_root);
  ObjectTable::Entry entry;
  ODE_RETURN_IF_ERROR(table.GetEntry(local, &entry));
  if (!entry.allocated() || entry.is_version()) {
    return Status::NotFound("object " + std::to_string(local));
  }
  while (true) {
    edges->emplace_back(entry.vnum, entry.parent_vnum);
    if (entry.prev_version == kInvalidLocalOid) break;
    ODE_RETURN_IF_ERROR(table.GetEntry(entry.prev_version, &entry));
  }
  std::reverse(edges->begin(), edges->end());
  return Status::OK();
}

Status ObjectStore::SetDerivation(PageId table_root, LocalOid local,
                                  uint32_t parent_vnum) {
  ObjectTable table(engine_, table_root);
  ObjectTable::Entry head;
  ODE_RETURN_IF_ERROR(table.GetEntry(local, &head));
  if (!head.allocated() || head.is_version()) {
    return Status::NotFound("object " + std::to_string(local));
  }
  head.parent_vnum = parent_vnum;
  return table.SetEntry(local, head);
}

Status ObjectStore::GetInfo(PageId table_root, LocalOid local,
                            ObjectTable::Entry* entry) const {
  ObjectTable table(engine_, table_root);
  ODE_RETURN_IF_ERROR(table.GetEntry(local, entry));
  if (!entry->allocated()) {
    return Status::NotFound("object " + std::to_string(local));
  }
  return Status::OK();
}

Status ObjectStore::NextHead(PageId table_root, LocalOid start,
                             LocalOid* local, bool* found) const {
  ObjectTable table(engine_, table_root);
  return table.NextHead(start, local, found);
}

Result<uint32_t> ObjectStore::NumEntries(PageId table_root) const {
  ObjectTable table(engine_, table_root);
  return table.NumEntries();
}

}  // namespace ode
