#ifndef ODE_OBJSTORE_OBJECT_TABLE_H_
#define ODE_OBJSTORE_OBJECT_TABLE_H_

#include <cstdint>
#include <vector>

#include "objstore/object_id.h"
#include "storage/engine.h"
#include "util/status.h"

namespace ode {

/// One object table exists per cluster. It maps a LocalOid to the physical
/// location of the object's record plus identity metadata (type code,
/// version-chain links). The indirection lets records move between pages
/// without invalidating object ids — the paper's stable object identity.
///
/// Structure on disk:
///  * root/directory pages (PageType::kTableRoot), chained, listing entry
///    pages; the first root also carries allocation state;
///  * entry pages (PageType::kObjectTable) holding fixed 32-byte entries.
class ObjectTable {
 public:
  /// Entry flag bits.
  static constexpr uint16_t kFlagAllocated = 1 << 0;
  static constexpr uint16_t kFlagVersion = 1 << 1;   ///< Old version, not head.
  static constexpr uint16_t kFlagOverflow = 1 << 2;  ///< Record is a chain ref.
  /// Head of a deleted object: no record of its own, but the version chain
  /// behind it is kept until the GC watermark passes the deletion stamp so
  /// older snapshots still resolve the pre-delete content
  /// (docs/CONCURRENCY.md "MVCC snapshot reads").
  static constexpr uint16_t kFlagTombstone = 1 << 3;
  /// MVCC-retained pre-update image (always together with kFlagVersion).
  /// Invisible to the user-level version operations (vnum duplicates its
  /// successor's); reclaimed by the version GC, unlike the paper's explicit
  /// newversion snapshots which are permanent.
  static constexpr uint16_t kFlagRetained = 1 << 4;

  /// Sentinel parent version for "root of the derivation tree".
  static constexpr uint32_t kNoParentVersion = 0xFFFFFFFFu;

  /// Decoded object-table entry.
  struct Entry {
    PageId page = kInvalidPageId;  ///< Data page (or overflow first page).
    uint16_t slot = 0;
    uint16_t flags = 0;
    uint32_t type_code = 0;
    LocalOid prev_version = kInvalidLocalOid;
    uint32_t vnum = 0;
    /// Version this one's content derives from (the version-*tree* edge of
    /// the paper's footnote 15 / reference [4]); kNoParentVersion for v0.
    uint32_t parent_vnum = kNoParentVersion;
    /// Publish sequence of the commit that wrote this version (0 = pre-MVCC
    /// writer). A snapshot minted at S sees the newest chain entry with
    /// commit_seq <= S.
    uint64_t commit_seq = 0;

    bool allocated() const { return flags & kFlagAllocated; }
    bool is_version() const { return flags & kFlagVersion; }
    bool overflow() const { return flags & kFlagOverflow; }
    bool tombstone() const { return flags & kFlagTombstone; }
    bool retained() const { return flags & kFlagRetained; }
  };

  ObjectTable(StorageEngine* engine, PageId root) : engine_(engine), root_(root) {}

  /// Allocates a fresh table (one root page) within the active transaction.
  static Status Create(StorageEngine* engine, PageId* root);

  /// Frees all table pages. The caller must have freed all records first.
  Status Drop();

  /// Allocates an entry index (reusing freed indexes when available).
  Status AllocEntry(LocalOid* local);

  /// Returns `local` to the free-entry list.
  Status FreeEntry(LocalOid local);

  Status GetEntry(LocalOid local, Entry* entry) const;
  Status SetEntry(LocalOid local, const Entry& entry);

  /// High-water mark: every allocated entry index is < this value.
  Result<uint32_t> NumEntries() const;

  /// Finds the first entry index >= `start` that is an allocated head
  /// (allocated, not an old version). Sets *found=false past the end.
  /// Tombstoned heads are skipped unless `include_tombstones` — snapshot
  /// scans pass true and resolve per-object visibility themselves (an older
  /// snapshot may still see the pre-delete content behind a tombstone).
  Status NextHead(LocalOid start, LocalOid* local, bool* found,
                  bool include_tombstones = false) const;

  /// The page currently targeted for record inserts (kInvalidPageId if none
  /// yet); maintained by the ObjectStore.
  Result<PageId> GetCurrentDataPage() const;
  Status SetCurrentDataPage(PageId page);

  PageId root() const { return root_; }

  /// Collects the table's own pages: the root/directory chain and the entry
  /// pages it references (integrity checking).
  Status ListStructurePages(std::vector<PageId>* root_pages,
                            std::vector<PageId>* entry_pages) const;

  /// Head of the freed-entry-index list (kInvalidLocalOid when empty).
  Result<LocalOid> GetFreeEntryHead() const;

  /// Returns fully-vacated trailing entry pages (and emptied directory
  /// roots) to the storage allocator after a mass delete: lowers the
  /// high-water mark to the last allocated entry, drops free-list nodes
  /// that lived beyond it, then frees every entry page past the new mark.
  /// Only the contiguous tail can go — the directory is strictly dense, so
  /// interior pages with holes stay and serve reuse through the free list.
  /// `released` (optional) receives the number of pages handed back.
  Status ReleaseTrailingFreePages(uint32_t* released);

 private:
  /// Locates (creating on demand when `create` is set) the entry page that
  /// holds entry index `local`.
  Status LocateEntryPage(LocalOid local, bool create, PageId* page) const;

  StorageEngine* engine_;
  PageId root_;
};

}  // namespace ode

#endif  // ODE_OBJSTORE_OBJECT_TABLE_H_
