#ifndef ODE_OBJSTORE_OBJECT_STORE_H_
#define ODE_OBJSTORE_OBJECT_STORE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "objstore/object_id.h"
#include "objstore/object_table.h"
#include "storage/engine.h"
#include "util/slice.h"
#include "util/status.h"

namespace ode {

/// Stores serialized objects as records and implements the persistent-object
/// operations the ODE core builds on: pnew/pdelete (§2), and the linear
/// versioning operations (§4). One ObjectStore serves all clusters; each
/// cluster is identified by the root page of its object table.
///
/// Records up to kInlineRecordMax bytes live in slotted data pages; larger
/// records spill into overflow-page chains. The object table indirection
/// makes both representations and record moves invisible to object ids.
class ObjectStore {
 public:
  /// Records larger than this are stored in overflow chains.
  static constexpr size_t kInlineRecordMax = 2048;

  explicit ObjectStore(StorageEngine* engine) : engine_(engine) {}

  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  /// Creates an empty object table for a new cluster.
  Status CreateTable(PageId* table_root);

  /// Deletes every object (all versions) and frees all table pages — the
  /// storage side of dropping a cluster.
  Status DropTable(PageId table_root);

  /// Inserts a new object; assigns its LocalOid. The object starts at
  /// version 0.
  Status Insert(PageId table_root, uint32_t type_code, const Slice& data,
                LocalOid* local);

  /// Reads an object's record. `vnum` selects a specific version or
  /// kGenericVersion for the current one. Returns the record bytes plus the
  /// entry's type code and the resolved version number.
  Status Read(PageId table_root, LocalOid local, uint32_t vnum,
              std::string* data, uint32_t* type_code,
              uint32_t* resolved_vnum) const;

  /// Replaces the current version's record bytes. Old versions are
  /// read-only (paper §4).
  Status Update(PageId table_root, LocalOid local, const Slice& data);

  /// Deletes the object and all of its versions (pdelete on a head, §4).
  Status Delete(PageId table_root, LocalOid local);

  /// Snapshots the current state as a frozen version and bumps the current
  /// version number (the paper's `newversion`, §4). Returns the new current
  /// version number.
  Status NewVersion(PageId table_root, LocalOid local, uint32_t* new_vnum);

  /// Deletes one specific version (`delversion`, §4). Deleting the current
  /// version promotes the previous one; deleting the only version is an
  /// error (use Delete).
  Status DeleteVersion(PageId table_root, LocalOid local, uint32_t vnum);

  /// Makes the current record a copy of version `vnum`'s record (without
  /// touching history). Combined with NewVersion this gives the
  /// checkpoint-and-revert workflow of versioned design objects.
  Status RevertToVersion(PageId table_root, LocalOid local, uint32_t vnum);

  /// Entry metadata (type code, current vnum, flags) without reading data.
  Status GetInfo(PageId table_root, LocalOid local,
                 ObjectTable::Entry* entry) const;

  /// Existing version numbers of the object, ascending (ends with the
  /// current version). Deleted versions are absent.
  Status ListVersions(PageId table_root, LocalOid local,
                      std::vector<uint32_t>* vnums) const;

  /// The version-derivation tree (footnote 15 of the paper; realized fully
  /// in its reference [4]): (vnum, parent_vnum) edges for every existing
  /// version plus the current one. Parent kNoParentVersion marks a root.
  Status ListVersionTree(
      PageId table_root, LocalOid local,
      std::vector<std::pair<uint32_t, uint32_t>>* edges) const;

  /// Records that the current content now derives from `parent_vnum`
  /// (used by revert/branch operations).
  Status SetDerivation(PageId table_root, LocalOid local,
                       uint32_t parent_vnum);

  /// First allocated head with index >= `start`; *found=false past the end.
  Status NextHead(PageId table_root, LocalOid start, LocalOid* local,
                  bool* found) const;

  /// High-water mark of entry indexes for the cluster.
  Result<uint32_t> NumEntries(PageId table_root) const;

  StorageEngine* engine() { return engine_; }

 private:
  /// Writes `data` as a record, inline or overflow; fills location fields
  /// (page/slot/kFlagOverflow) of `entry`.
  Status WriteRecord(ObjectTable* table, const Slice& data,
                     ObjectTable::Entry* entry);

  /// Frees the record referenced by `entry` (inline slot or overflow chain).
  Status FreeRecord(ObjectTable* table, const ObjectTable::Entry& entry);

  /// Reads the raw record bytes referenced by `entry`.
  Status ReadRecord(const ObjectTable::Entry& entry, std::string* data) const;

  StorageEngine* engine_;
};

}  // namespace ode

#endif  // ODE_OBJSTORE_OBJECT_STORE_H_
