#ifndef ODE_OBJSTORE_OBJECT_STORE_H_
#define ODE_OBJSTORE_OBJECT_STORE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "objstore/object_id.h"
#include "objstore/object_table.h"
#include "storage/engine.h"
#include "util/slice.h"
#include "util/status.h"

namespace ode {

/// Stores serialized objects as records and implements the persistent-object
/// operations the ODE core builds on: pnew/pdelete (§2), and the linear
/// versioning operations (§4). One ObjectStore serves all clusters; each
/// cluster is identified by the root page of its object table.
///
/// Records up to kInlineRecordMax bytes live in slotted data pages; larger
/// records spill into overflow-page chains. The object table indirection
/// makes both representations and record moves invisible to object ids.
class ObjectStore {
 public:
  /// Records larger than this are stored in overflow chains.
  static constexpr size_t kInlineRecordMax = 2048;

  explicit ObjectStore(StorageEngine* engine) : engine_(engine) {}

  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  /// Creates an empty object table for a new cluster.
  Status CreateTable(PageId* table_root);

  /// Deletes every object (all versions) and frees all table pages — the
  /// storage side of dropping a cluster.
  Status DropTable(PageId table_root);

  /// Inserts a new object; assigns its LocalOid. The object starts at
  /// version 0.
  Status Insert(PageId table_root, uint32_t type_code, const Slice& data,
                LocalOid* local);

  /// Reads an object's record. `vnum` selects a specific version or
  /// kGenericVersion for the current one. Returns the record bytes plus the
  /// entry's type code and the resolved version number.
  Status Read(PageId table_root, LocalOid local, uint32_t vnum,
              std::string* data, uint32_t* type_code,
              uint32_t* resolved_vnum) const;

  /// Snapshot-visible read (docs/CONCURRENCY.md "MVCC snapshot reads"):
  /// resolves through the version chain to the newest version with
  /// commit_seq <= snapshot_seq and reads its record. NotFound when the
  /// object was created after the snapshot or deleted at/before it. Takes
  /// no locks — safe against concurrent strict-2PL writers.
  Status ReadSnapshot(PageId table_root, LocalOid local, uint32_t vnum,
                      uint64_t snapshot_seq, std::string* data,
                      uint32_t* type_code, uint32_t* resolved_vnum) const;

  /// Visibility resolution only: the chain entry a snapshot at
  /// `snapshot_seq` sees for (`local`, `vnum`), without reading the record.
  Status ResolveSnapshot(PageId table_root, LocalOid local, uint32_t vnum,
                         uint64_t snapshot_seq,
                         ObjectTable::Entry* entry) const;

  /// Replaces the current version's record bytes. Old versions are
  /// read-only (paper §4). The previously committed record is retained on
  /// the version chain (kFlagRetained) so active snapshots keep resolving
  /// it; the version GC reclaims it once the watermark passes.
  Status Update(PageId table_root, LocalOid local, const Slice& data);

  /// Deletes the object and all of its versions (pdelete on a head, §4).
  /// The head becomes a tombstone and the chain is kept for older
  /// snapshots; physical reclamation happens in CollectGarbage once the
  /// watermark passes the deletion stamp.
  Status Delete(PageId table_root, LocalOid local);

  /// Version-GC tallies for one CollectGarbage pass.
  struct GcStats {
    uint64_t objects_reclaimed = 0;   ///< Tombstoned objects fully purged.
    uint64_t versions_reclaimed = 0;  ///< Retained pre-update images freed.
    uint64_t pages_reclaimed = 0;     ///< Vacated trailing entry/dir pages.
  };

  /// Reclaims MVCC debris invisible to every active and future snapshot:
  /// tombstoned objects whose deletion stamp is <= `watermark`, and
  /// retained pre-update images whose successor committed at or before it.
  /// Explicit newversion snapshots are permanent and never reclaimed. Runs
  /// inside the caller's transaction (the caller holds the cluster lock).
  Status CollectGarbage(PageId table_root, uint64_t watermark, GcStats* stats);

  /// Snapshots the current state as a frozen version and bumps the current
  /// version number (the paper's `newversion`, §4). Returns the new current
  /// version number.
  Status NewVersion(PageId table_root, LocalOid local, uint32_t* new_vnum);

  /// Deletes one specific version (`delversion`, §4). Deleting the current
  /// version promotes the previous one; deleting the only version is an
  /// error (use Delete).
  Status DeleteVersion(PageId table_root, LocalOid local, uint32_t vnum);

  /// Makes the current record a copy of version `vnum`'s record (without
  /// touching history). Combined with NewVersion this gives the
  /// checkpoint-and-revert workflow of versioned design objects.
  Status RevertToVersion(PageId table_root, LocalOid local, uint32_t vnum);

  /// Entry metadata (type code, current vnum, flags) without reading data.
  Status GetInfo(PageId table_root, LocalOid local,
                 ObjectTable::Entry* entry) const;

  /// Existing version numbers of the object, ascending (ends with the
  /// current version). Deleted versions are absent.
  Status ListVersions(PageId table_root, LocalOid local,
                      std::vector<uint32_t>* vnums) const;

  /// The version-derivation tree (footnote 15 of the paper; realized fully
  /// in its reference [4]): (vnum, parent_vnum) edges for every existing
  /// version plus the current one. Parent kNoParentVersion marks a root.
  Status ListVersionTree(
      PageId table_root, LocalOid local,
      std::vector<std::pair<uint32_t, uint32_t>>* edges) const;

  /// Records that the current content now derives from `parent_vnum`
  /// (used by revert/branch operations).
  Status SetDerivation(PageId table_root, LocalOid local,
                       uint32_t parent_vnum);

  /// First allocated head with index >= `start`; *found=false past the end.
  /// Snapshot scans pass `include_tombstones` and resolve per-object
  /// visibility via ResolveSnapshot/ReadSnapshot.
  Status NextHead(PageId table_root, LocalOid start, LocalOid* local,
                  bool* found, bool include_tombstones = false) const;

  /// High-water mark of entry indexes for the cluster.
  Result<uint32_t> NumEntries(PageId table_root) const;

  /// The cluster's object-table entry pages, in directory order. Parallel
  /// scans hand these to BufferPool::Prefetch so a cold scan loads the
  /// table with batched sequential reads instead of per-page demand misses.
  Status ListEntryPages(PageId table_root, std::vector<PageId>* pages) const;

  StorageEngine* engine() { return engine_; }

 private:
  /// Writes `data` as a record, inline or overflow; fills location fields
  /// (page/slot/kFlagOverflow) of `entry`.
  Status WriteRecord(ObjectTable* table, const Slice& data,
                     ObjectTable::Entry* entry);

  /// Frees the record referenced by `entry` (inline slot or overflow chain).
  /// No-op for record-less entries (tombstones).
  Status FreeRecord(ObjectTable* table, const ObjectTable::Entry& entry);

  /// Reads the raw record bytes referenced by `entry`.
  Status ReadRecord(const ObjectTable::Entry& entry, std::string* data) const;

  /// Physically frees the whole chain of head `local` — records and entries,
  /// including retained images and explicit versions. Used by DropTable and
  /// by the GC once a tombstone passes the watermark.
  Status PurgeObject(ObjectTable* table, LocalOid local);

  StorageEngine* engine_;
};

}  // namespace ode

#endif  // ODE_OBJSTORE_OBJECT_STORE_H_
