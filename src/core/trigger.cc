#include "core/trigger.h"

namespace ode {

void TriggerRegistry::Define(Definition def) {
  auto key = std::make_pair(def.type_name, def.trigger_name);
  defs_[std::move(key)] = std::move(def);
}

const TriggerRegistry::Definition* TriggerRegistry::Resolve(
    const TypeRegistry& registry, const std::string& dynamic_type,
    const std::string& trigger_name) const {
  auto it = defs_.find({dynamic_type, trigger_name});
  if (it != defs_.end()) return &it->second;
  const TypeInfo* info = registry.Find(dynamic_type);
  if (info == nullptr) return nullptr;
  for (const auto& link : info->bases) {
    if (const Definition* def =
            Resolve(registry, link.base_name, trigger_name)) {
      return def;
    }
  }
  return nullptr;
}

}  // namespace ode
