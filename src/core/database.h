#ifndef ODE_CORE_DATABASE_H_
#define ODE_CORE_DATABASE_H_

#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "concur/session_manager.h"
#include "concur/trigger_executor.h"
#include "core/constraint.h"
#include "core/options.h"
#include "core/ref.h"
#include "core/trigger.h"
#include "objstore/object_store.h"
#include "query/index_manager.h"
#include "query/parallel.h"
#include "schema/catalog.h"
#include "schema/type_registry.h"
#include "storage/engine.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/status.h"

namespace ode {

class Transaction;

/// An ODE database: persistent objects grouped into per-type clusters,
/// accessed and manipulated inside transactions (paper §1–2). This is the
/// C++ embedding of what O++ source compiles down to; the `oppc` translator
/// (src/opp) emits calls against this API.
///
/// Thread model (docs/CONCURRENCY.md): any number of threads may call
/// Begin()/RunTransaction() concurrently; each transaction is bound to the
/// thread that began it and has a private object cache. Isolation is strict
/// two-phase locking through the engine's lock manager (shared/exclusive
/// locks at object, cluster and schema granularity), with deadlock detection
/// — the victim's transaction fails with Status::Deadlock and
/// RunTransaction retries it. The paper itself defers concurrency ("any O++
/// program ... will be considered to be a single transaction"); this is the
/// natural multi-session extension.
class Database {
 public:
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  ~Database();

  /// Opens (creating if necessary) the database at `path`; runs crash
  /// recovery if needed and loads the catalog.
  static Status Open(const std::string& path, const DatabaseOptions& options,
                     std::unique_ptr<Database>* out);

  /// Checkpoints and closes.
  Status Close();

  // --- Transactions --------------------------------------------------------

  /// Starts a transaction bound to the calling thread. At most one can be
  /// open per thread; any number of threads may each have one.
  Result<std::unique_ptr<Transaction>> Begin();

  /// Starts a read-only MVCC snapshot transaction: reads resolve against
  /// the commit sequence current at this call, take no object/cluster/index
  /// locks, and never block or abort on concurrent writers. All mutating
  /// operations fail with InvalidArgument (docs/CONCURRENCY.md "MVCC
  /// snapshot reads").
  Result<std::unique_ptr<Transaction>> BeginSnapshot();

  /// BeginSnapshot at an EXISTING snapshot sequence instead of minting a
  /// fresh one: the new transaction reads the exact same cut as the
  /// transaction that minted `seq`. Parallel ForAll workers join their
  /// coordinator's snapshot this way, so every worker resolves every object
  /// identically. `seq` must belong to a still-active snapshot (or at least
  /// lie at or above the GC watermark) — Busy otherwise.
  ///
  /// Contract: the minting transaction must stay open for the whole life of
  /// the joined transaction. Joiners skip the per-transaction schema lock
  /// and rely on the coordinator's (see Transaction::StartSnapshotAt).
  Result<std::unique_ptr<Transaction>> BeginSnapshotAt(uint64_t seq);

  /// RunTransaction's read-only sibling: runs `body` in a snapshot
  /// transaction, retrying Busy (e.g. a scan that raced a version-GC
  /// publish) like RunTransaction retries deadlock victims.
  Status RunReadTransaction(const std::function<Status(Transaction&)>& body);

  /// Runs `body` in a transaction: commit on OK, abort on error. The commit
  /// itself can fail (e.g. ConstraintViolation), which also aborts. If the
  /// transaction loses a deadlock or times out on a lock, the whole body is
  /// retried up to DatabaseOptions::max_txn_retries times with jittered
  /// backoff (counted in txn.deadlock_retries).
  Status RunTransaction(const std::function<Status(Transaction&)>& body);

  /// The calling thread's open transaction, if any (used by
  /// Ref<T>::operator->).
  Transaction* active_txn() const { return sessions_.Current(); }

  // --- Session migration (the network server, docs/SERVER.md) --------------

  /// Unbinds the calling thread's open transaction WITHOUT ending it: the
  /// engine TLS binding and the session-map entry are released while the
  /// transaction keeps its locks, caches and id. Until AttachSession adopts
  /// it on some thread, no thread may operate on it. InvalidArgument if
  /// `txn` is not the calling thread's open transaction.
  Status DetachSession(Transaction* txn);

  /// Adopts a transaction detached by DetachSession on the calling thread;
  /// the pair lets a server worker pool service one connection's transaction
  /// across many requests, one worker at a time. Busy if the calling thread
  /// already has a transaction or `txn` is attached elsewhere.
  Status AttachSession(Transaction* txn);

  // --- Clusters (paper §2.5) -----------------------------------------------

  /// The paper's `create(T)`: creates the cluster (type extent) for T.
  /// Runs in the active transaction, or its own if none is open.
  template <typename T>
  Status CreateCluster();

  template <typename T>
  bool HasCluster() const {
    return catalog_.FindClusterByType(TypeNameOf<T>()) != nullptr;
  }

  template <typename T>
  Result<ClusterId> ClusterOf() const {
    return ClusterIdForName(TypeNameOf<T>());
  }

  Result<ClusterId> ClusterIdForName(const std::string& type_name) const;

  // --- Constraints (paper §5) ----------------------------------------------

  /// Attaches a named constraint to class T. Applies to T and all derived
  /// classes; checked on the write set at commit.
  template <typename T>
  void RegisterConstraint(const std::string& name,
                          std::function<bool(const T&)> pred) {
    constraints_.Add(TypeNameOf<T>(), name, [pred = std::move(pred)](
                                                const void* obj) {
      return pred(*static_cast<const T*>(obj));
    });
  }

  // --- Triggers (paper §6) ---------------------------------------------------

  /// Registers the (condition, action) code of a class-level trigger
  /// definition. Activations referencing it are created per object with
  /// Transaction::ActivateTrigger and persist in the database.
  template <typename T>
  void DefineTrigger(
      const std::string& name,
      std::function<bool(const T&, const std::vector<double>&)> condition,
      std::function<Status(Transaction&, Ref<T>, const std::vector<double>&)>
          action,
      bool perpetual_default = false);

  /// Executes firings deferred by run_triggers_on_commit=false.
  Status RunPendingTriggers();

  size_t pending_trigger_count() const {
    MutexLock lock(pending_mu_);
    return pending_firings_.size();
  }

  /// Blocks until every trigger action queued to the async executor has
  /// finished (no-op when trigger_executor_threads == 0).
  void DrainTriggers();

  // --- Indexes ---------------------------------------------------------------

  /// Creates a persistent secondary index on cluster T. `key_fn` returns the
  /// encoded user key (see index_key.h). Existing objects are backfilled.
  /// Runs in the active transaction, or its own if none is open.
  template <typename T>
  Status CreateIndex(const std::string& name,
                     std::function<std::string(const T&)> key_fn);

  /// Re-attaches extractor code to a persisted index after re-open.
  template <typename T>
  void AttachIndexExtractor(const std::string& name,
                            std::function<std::string(const T&)> key_fn) {
    indexes_->RegisterExtractor(
        name, [key_fn = std::move(key_fn)](const void* obj) {
          return key_fn(*static_cast<const T*>(obj));
        });
  }

  Status DropIndex(const std::string& name);

  /// Reclaims trailing free pages, shrinking the database file (storage
  /// maintenance; must be called outside a transaction). Returns the number
  /// of 4 KiB pages released.
  Result<uint32_t> Vacuum() { return engine_->Vacuum(); }

  /// Online backup: checkpoints (so the page file is self-contained, WAL
  /// empty) and copies it to `path`. The copy opens as a normal database.
  /// Must be called outside a transaction.
  Status BackupTo(const std::string& path);

  /// Totals from one CollectVersionGarbage pass.
  struct GcTotals {
    uint64_t objects_reclaimed = 0;
    uint64_t versions_reclaimed = 0;
    uint64_t index_entries_reclaimed = 0;  ///< Dead versioned index entries.
    uint64_t pages_reclaimed = 0;  ///< Entry pages freed (mass-delete slack).
    uint64_t clusters = 0;         ///< Clusters swept.
    uint64_t indexes = 0;          ///< Indexes swept.
  };

  /// Reclaims MVCC debris — tombstoned objects, retained pre-update images
  /// and superseded versioned index entries no active or future snapshot
  /// can see (watermark = oldest active snapshot sequence, else the durable
  /// commit sequence). Sweeps each cluster in its own write transaction
  /// under an exclusive cluster lock (freeing fully-vacated trailing entry
  /// pages), then each index under an exclusive index lock. Must be called
  /// outside a transaction; explicit newversion history is never touched.
  /// Runs off the commit path — on demand here, or periodically on the
  /// background GC thread when DatabaseOptions::gc_interval_ms > 0.
  Status CollectVersionGarbage(GcTotals* totals = nullptr);

  // --- Internal plumbing (used by Transaction/ForAll; stable but not part
  // --- of the end-user surface) ----------------------------------------------

  /// Registry instruments for the core/query hot paths, resolved once at
  /// Open so per-row increments are a pointer deref + relaxed add (metric
  /// catalog: docs/OBSERVABILITY.md).
  struct CoreMetrics {
    Histogram* commit_us;            ///< txn.commit_us — full Commit() latency
    Counter* constraint_checks;      ///< txn.constraint_checks
    Counter* constraint_violations;  ///< txn.constraint_violations
    Counter* trigger_firings;        ///< txn.trigger_firings
    Counter* trigger_failures;       ///< trigger.failures — firings whose
                                     ///< action transaction ultimately failed
                                     ///< (shared with the async executor)
    Counter* cache_evictions;        ///< txn.cache_evictions
    Counter* deadlock_retries;       ///< txn.deadlock_retries — RunTransaction
                                     ///< re-runs after Deadlock/Busy
    Counter* scans;                  ///< query.scans — full-cluster ForAll runs
    Counter* index_scans;            ///< query.index_scans — indexed ForAll runs
    Counter* oid_list_scans;         ///< query.oid_list_scans — OverOids runs
    Counter* rows_scanned;           ///< query.rows_scanned
    Counter* rows_returned;          ///< query.rows_returned
    Counter* parallel_scans;         ///< query.parallel.scans — ForAll runs
                                     ///< that executed the morsel-parallel
                                     ///< scan path
    Counter* parallel_morsels;       ///< query.parallel.morsels — entry-range
                                     ///< morsels claimed by pool workers
    Counter* parallel_fallbacks;     ///< query.parallel.fallbacks — Parallel()
                                     ///< requests that ran serially (not a
                                     ///< snapshot txn, indexed path, or no
                                     ///< pool)
    Counter* join_nested_loop;       ///< query.join.nested_loop — runs
    Counter* join_index;             ///< query.join.index — runs
    Counter* join_hash;              ///< query.join.hash — runs
    Counter* join_pairs;             ///< query.join.pairs — pairs emitted
    Counter* snapshot_reads;         ///< concur.snapshot.reads — lock-free
                                     ///< MVCC object reads by snapshot txns
    Counter* lock_escalations;       ///< concur.lock.escalations — object→
                                     ///< cluster lock escalations
    Counter* gc_objects_reclaimed;   ///< mvcc.gc.objects_reclaimed
    Counter* gc_versions_reclaimed;  ///< mvcc.gc.versions_reclaimed
    Counter* gc_index_entries_reclaimed;  ///< mvcc.gc.index_entries_reclaimed
    Counter* gc_pages_reclaimed;     ///< mvcc.gc.pages_reclaimed — entry
                                     ///< pages freed by the GC slack sweep
  };

  /// The registry this database reports into (EngineOptions::metrics, or
  /// the process-global one).
  MetricsRegistry& metrics() { return engine_->metrics(); }
  const CoreMetrics& core_metrics() const { return core_metrics_; }

  StorageEngine& engine() { return *engine_; }
  ObjectStore& store() { return *store_; }
  /// Shared worker pool for parallel ForAll scans; nullptr when
  /// EngineOptions::query_threads == 0.
  QueryPool* query_pool() { return query_pool_.get(); }
  CatalogData& catalog() { return catalog_; }
  const CatalogData& catalog() const { return catalog_; }
  IndexManager& indexes() { return *indexes_; }
  ConstraintRegistry& constraints() { return constraints_; }
  TriggerRegistry& triggers() { return triggers_; }
  const DatabaseOptions& options() const { return options_; }

  /// Persists the catalog inside the active transaction.
  Status SaveCatalog();
  /// Re-reads the catalog from disk (after an abort).
  Status ReloadCatalog();

  /// Assigns (persisting) a stable type code for `type_name` if absent.
  Result<uint32_t> EnsureTypeCode(const std::string& type_name);
  Result<std::string> TypeNameByCode(uint32_t code) const;

  /// Object-table root for a cluster.
  Result<PageId> TableRootOf(ClusterId cluster) const;

  /// Fresh persistent trigger id (inside the active transaction).
  Result<uint64_t> NextTriggerId();

  /// A scheduled trigger firing awaiting execution.
  struct Firing {
    const TriggerRegistry::Definition* def;
    uint64_t trigger_id;
    Oid oid;
    std::vector<double> params;
    int depth = 0;  ///< Cascade depth (firings fired by firings).
  };

  /// Runs each firing as an independent transaction (weak coupling, §6) —
  /// synchronously, or through the async executor when
  /// trigger_executor_threads > 0.
  void ExecuteFirings(std::vector<Firing> firings);

  /// Test hook: abandons the database as a crash would (no checkpoint; the
  /// WAL is recovered on the next Open).
  void SimulateCrash() {
    closed_ = true;
    engine_->SimulateCrash();
  }

 private:
  friend class Transaction;

  Database(const DatabaseOptions& options,
           std::unique_ptr<StorageEngine> engine);

  /// Runs `fn` inside the calling thread's transaction if one is open, else
  /// inside a fresh one (used by schema conveniences).
  Status InTransaction(const std::function<Status(Transaction&)>& fn);

  /// Runs one firing as its own transaction, retrying Deadlock/Busy up to
  /// `max_retries` (the async executor path passes trigger_max_retries).
  Status RunOneFiring(const Firing& firing);

  /// Background GC loop (gc_interval_ms > 0): sleeps the interval, runs
  /// CollectVersionGarbage, repeats until StopGcThread. Busy results (a
  /// session was active) are expected and ignored — the next tick retries.
  void GcThreadMain();
  void StartGcThread();
  void StopGcThread();

  DatabaseOptions options_;
  std::unique_ptr<StorageEngine> engine_;
  CoreMetrics core_metrics_;
  std::unique_ptr<ObjectStore> store_;
  std::unique_ptr<IndexManager> indexes_;
  /// Parallel-query worker pool (EngineOptions::query_threads); torn down
  /// in Close() before the engine so no worker outlives the storage layer.
  std::unique_ptr<QueryPool> query_pool_;
  CatalogData catalog_;
  ConstraintRegistry constraints_;
  TriggerRegistry triggers_;
  /// Thread → its open transaction (thread-affine sessions).
  mutable concur::SessionManager<Transaction> sessions_;
  /// Async trigger daemon; null when trigger_executor_threads == 0.
  std::unique_ptr<concur::TriggerExecutor> trigger_exec_;
  mutable Mutex pending_mu_;
  std::vector<Firing> pending_firings_ GUARDED_BY(pending_mu_);
  /// Background version-GC thread (DatabaseOptions::gc_interval_ms).
  std::thread gc_thread_;
  Mutex gc_mu_;
  CondVar gc_cv_;
  bool gc_stop_ GUARDED_BY(gc_mu_) = false;
  bool closed_ = false;
};

template <typename T>
void Database::DefineTrigger(
    const std::string& name,
    std::function<bool(const T&, const std::vector<double>&)> condition,
    std::function<Status(Transaction&, Ref<T>, const std::vector<double>&)>
        action,
    bool perpetual_default) {
  TriggerRegistry::Definition def;
  def.type_name = TypeNameOf<T>();
  def.trigger_name = name;
  def.perpetual_default = perpetual_default;
  def.condition = [condition = std::move(condition)](
                      const void* obj, const std::vector<double>& params) {
    return condition(*static_cast<const T*>(obj), params);
  };
  def.action = [this, action = std::move(action)](
                   Transaction& txn, Oid oid,
                   const std::vector<double>& params) {
    return action(txn, Ref<T>(this, oid), params);
  };
  triggers_.Define(std::move(def));
}

}  // namespace ode

#endif  // ODE_CORE_DATABASE_H_
