#include "core/transaction.h"

#include <algorithm>
#include <chrono>

#include "util/logging.h"

namespace ode {

Transaction::Transaction(Database* db) : db_(db) {
  cache_limit_ = db->options().max_cached_objects;
  if (cache_limit_ > 0 && cache_limit_ < kMinCacheLimit) {
    cache_limit_ = kMinCacheLimit;
  }
}

Transaction::~Transaction() {
  if (open_) {
    Status s = Abort();
    if (!s.ok()) {
      ODE_LOG(kError) << "abort in ~Transaction failed: " << s.ToString();
    }
  }
}

Status Transaction::Start() {
  ODE_ASSIGN_OR_RETURN(TxnId id, db_->engine().BeginTxn());
  txn_id_ = id;
  open_ = true;
  db_->sessions_.Bind(this);
  // Every transaction reads the shared in-memory catalog, so it holds the
  // schema lock (shared) for its whole life; DDL upgrades it to exclusive.
  // Snapshot transactions keep this one lock too (docs/CONCURRENCY.md
  // "MVCC snapshot reads") — S(schema) never conflicts with data writers.
  Status locked = db_->engine().lock_manager().Acquire(  // ode-lint: allow(snapshot-lock-free)
      txn_id_, concur::kSchemaResource, concur::LockMode::kShared);
  if (!locked.ok()) {
    open_ = false;
    db_->sessions_.Unbind(this);
    Status aborted = db_->engine().AbortTxn(txn_id_);
    if (!aborted.ok()) {
      ODE_LOG(kError) << "abort after failed schema lock also failed: "
                      << aborted.ToString();
    }
    return locked;
  }
  return Status::OK();
}

Status Transaction::StartSnapshot() {
  ODE_RETURN_IF_ERROR(Start());
  // Mint the snapshot sequence at the group-commit serialization point.
  // The schema lock from Start() stays shared for catalog safety; object,
  // cluster and index locks are bypassed from here on.
  Result<uint64_t> seq = db_->engine().MarkSnapshot();
  if (!seq.ok()) {
    Status aborted = Abort();
    if (!aborted.ok()) {
      ODE_LOG(kError) << "abort after failed snapshot mint also failed: "
                      << aborted.ToString();
    }
    return seq.status();
  }
  snapshot_ = true;
  snapshot_seq_ = seq.value();
  return Status::OK();
}

Status Transaction::StartSnapshotAt(uint64_t seq) {
  ODE_ASSIGN_OR_RETURN(TxnId id, db_->engine().BeginTxn());
  txn_id_ = id;
  open_ = true;
  db_->sessions_.Bind(this);
  // Deliberately NO S(schema) acquire, unlike Start(): a join-at-seq
  // transaction only ever runs as a parallel-scan worker under a
  // coordinator snapshot transaction whose own S(schema) outlives it, so
  // the catalog cannot move. Acquiring here could even deadlock — the FIFO
  // lock queue would park this worker behind a waiting DDL X(schema) while
  // that DDL waits on the coordinator, which in turn waits on this worker.
  //
  // Join the coordinator's cut: the engine validates that `seq` is still at
  // or above the GC watermark (the coordinator's active snapshot pins it
  // there) and registers this transaction in the active-snapshot set too.
  Result<uint64_t> joined = db_->engine().MarkSnapshotAt(seq);
  if (!joined.ok()) {
    Status aborted = Abort();
    if (!aborted.ok()) {
      ODE_LOG(kError) << "abort after failed snapshot join also failed: "
                      << aborted.ToString();
    }
    return joined.status();
  }
  snapshot_ = true;
  snapshot_seq_ = joined.value();
  return Status::OK();
}

Status Transaction::RejectIfSnapshot(const char* op) const {
  if (!snapshot_) return Status::OK();
  return Status::InvalidArgument(
      std::string(op) + " is not allowed in a read-only snapshot transaction");
}

Status Transaction::CloseOut(bool aborted) {
  (void)aborted;
  cache_.clear();
  lru_.clear();
  version_cache_.clear();
  open_ = false;
  catalog_dirty_ = false;
  db_->sessions_.Unbind(this);
  db_->engine().ReleaseTxnLocks(txn_id_);
  return Status::OK();
}

// --- Lock acquisition --------------------------------------------------------

Status Transaction::LockObject(Oid oid, concur::LockMode mode) {
  if (snapshot_) return Status::OK();  // snapshot reads take no locks
  // Escalated cluster lock already covers the object?
  auto esc = escalated_.find(oid.cluster);
  if (esc != escalated_.end() &&
      (esc->second == concur::LockMode::kExclusive ||
       mode == concur::LockMode::kShared)) {
    return Status::OK();
  }
  const size_t threshold = db_->options().lock_escalation_threshold;
  if (threshold > 0 && ++object_lock_counts_[oid.cluster] >= threshold) {
    // Trade per-object locks for one cluster lock (covering mode). The
    // object locks already held stay until release as usual; new requests
    // in this cluster are absorbed by the cluster lock.
    ODE_RETURN_IF_ERROR(LockCluster(oid.cluster, mode));
    escalated_[oid.cluster] = mode;
    db_->core_metrics().lock_escalations->Add();
    return Status::OK();
  }
  return db_->engine().lock_manager().Acquire(
      txn_id_, concur::ObjectResource(oid.Pack()), mode);
}

Status Transaction::LockCluster(ClusterId cluster, concur::LockMode mode) {
  // Only reachable from mutating or locked-scan paths, all of which are
  // rejected or bypassed in snapshot mode before getting here; fail loudly
  // if a new call path forgets that invariant.
  ODE_RETURN_IF_ERROR(RejectIfSnapshot("cluster locking"));
  ODE_RETURN_IF_ERROR(db_->engine().lock_manager().Acquire(
      txn_id_, concur::ClusterResource(cluster), mode));
  // Any cluster-lock use beyond pure object creation pins the lock to the
  // normal 2PL release point (scans and deletes rely on it for the rest of
  // the transaction).
  sticky_clusters_.insert(cluster);
  creation_clusters_.erase(cluster);
  // An escalated-mode upgrade (S cluster lock escalated, then X requested)
  // must be remembered as exclusive.
  auto esc = escalated_.find(cluster);
  if (esc != escalated_.end() && mode == concur::LockMode::kExclusive) {
    esc->second = concur::LockMode::kExclusive;
  }
  return Status::OK();
}

Status Transaction::LockClusterForCreation(ClusterId cluster) {
  ODE_RETURN_IF_ERROR(RejectIfSnapshot("object creation"));
  ODE_RETURN_IF_ERROR(db_->engine().lock_manager().Acquire(
      txn_id_, concur::ClusterResource(cluster), concur::LockMode::kExclusive));
  if (sticky_clusters_.find(cluster) == sticky_clusters_.end()) {
    creation_clusters_.insert(cluster);
  }
  return Status::OK();
}

Status Transaction::LockSchemaExclusive() {
  ODE_RETURN_IF_ERROR(RejectIfSnapshot("schema mutation"));
  ODE_RETURN_IF_ERROR(db_->engine().lock_manager().Acquire(
      txn_id_, concur::kSchemaResource, concur::LockMode::kExclusive));
  catalog_dirty_ = true;
  return Status::OK();
}

Status Transaction::LockIndex(const CatalogData::IndexEntry& entry,
                              concur::LockMode mode) {
  if (snapshot_) return Status::OK();  // snapshot reads are lock-free
  return db_->engine().lock_manager().Acquire(
      txn_id_, concur::IndexResource(entry.id), mode);
}

Status Transaction::LockIndexesForWrite(ClusterId cluster) {
  for (const auto& index : db_->catalog().indexes) {
    if (index.cluster != cluster) continue;
    ODE_RETURN_IF_ERROR(LockIndex(index, concur::LockMode::kExclusive));
  }
  return Status::OK();
}

Status Transaction::LockIndexShared(const std::string& index_name) {
  if (snapshot_) return Status::OK();  // snapshot scans read versioned entries
  const CatalogData::IndexEntry* entry = db_->catalog().FindIndex(index_name);
  if (entry == nullptr) return Status::OK();
  return LockIndex(*entry, concur::LockMode::kShared);
}

Status Transaction::LockIndexExclusive(const std::string& index_name) {
  ODE_RETURN_IF_ERROR(RejectIfSnapshot("index maintenance"));
  const CatalogData::IndexEntry* entry = db_->catalog().FindIndex(index_name);
  if (entry == nullptr) return Status::NotFound("index " + index_name);
  return LockIndex(*entry, concur::LockMode::kExclusive);
}

// --- Object cache -----------------------------------------------------------

void Transaction::TouchLru(Cached* cached) {
  if (cache_limit_ == 0 || !cached->in_lru) return;
  lru_.splice(lru_.end(), lru_, cached->lru_pos);
}

void Transaction::ForgetLru(Cached* cached) {
  if (!cached->in_lru) return;
  lru_.erase(cached->lru_pos);
  cached->in_lru = false;
}

void Transaction::EraseCacheKey(const CacheKey& key) {
  auto it = cache_.find(key);
  if (it == cache_.end()) return;
  ForgetLru(it->second.get());
  cache_.erase(it);
}

void Transaction::MaybeEvictCache() {
  if (cache_limit_ == 0 || evict_pause_ > 0) return;
  if (cache_.size() <= cache_limit_) return;
  // Walk from the cold end, but keep the last kProtectedRecentReads loads
  // untouched: callers (joins, Each) may still hold Read pointers to them.
  size_t examinable = lru_.size() > kProtectedRecentReads
                          ? lru_.size() - kProtectedRecentReads
                          : 0;
  auto it = lru_.begin();
  while (examinable-- > 0 && it != lru_.end() &&
         cache_.size() > cache_limit_) {
    auto found = cache_.find(*it);
    if (found == cache_.end()) {  // defensive: stale list entry
      it = lru_.erase(it);
      continue;
    }
    Cached& c = *found->second;
    if (c.dirty || c.is_new || c.deleted || c.old_keys_captured) {
      ++it;  // carries transaction state: not evictable
      continue;
    }
    c.in_lru = false;
    it = lru_.erase(it);
    cache_.erase(found);
    db_->core_metrics().cache_evictions->Add();
  }
}

Status Transaction::LoadObject(Oid oid, uint32_t vnum, Cached** out) {
  const CacheKey key{oid.Pack(), vnum};
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    if (it->second->deleted) {
      return Status::NotFound("object " + oid.ToString() + " was deleted");
    }
    TouchLru(it->second.get());
    *out = it->second.get();
    return Status::OK();
  }
  // A deleted head invalidates all version reads.
  auto head_it = cache_.find({oid.Pack(), kGenericVersion});
  if (head_it != cache_.end() && head_it->second->deleted) {
    return Status::NotFound("object " + oid.ToString() + " was deleted");
  }

  ODE_ASSIGN_OR_RETURN(PageId root, db_->TableRootOf(oid.cluster));
  std::string bytes;
  uint32_t type_code = 0;
  uint32_t resolved = 0;
  if (snapshot_) {
    // Snapshot read: resolve through the version chain to the newest
    // version with commit_seq <= snapshot_seq — no locks taken.
    ODE_RETURN_IF_ERROR(db_->store().ReadSnapshot(
        root, oid.local, vnum, snapshot_seq_, &bytes, &type_code, &resolved));
    db_->core_metrics().snapshot_reads->Add();
  } else {
    // First touch of this object: shared lock before reading storage (2PL —
    // a cache hit above means the lock is already held).
    ODE_RETURN_IF_ERROR(LockObject(oid, concur::LockMode::kShared));
    ODE_RETURN_IF_ERROR(db_->store().Read(root, oid.local, vnum, &bytes,
                                          &type_code, &resolved));
  }

  ODE_ASSIGN_OR_RETURN(std::string type_name, db_->TypeNameByCode(type_code));
  const TypeInfo* info = TypeRegistry::Global().Find(type_name);
  if (info == nullptr) {
    return Status::NotSupported("type not registered in this program: " +
                                type_name);
  }
  auto cached = std::make_unique<Cached>();
  cached->obj = info->construct();
  cached->type = info;
  cached->type_code = type_code;
  cached->resolved_vnum = resolved;
  Status s = info->deserialize(Slice(bytes), db_, cached->obj);
  if (!s.ok()) return s;
  Cached* raw = cached.get();
  cache_[key] = std::move(cached);
  if (cache_limit_ > 0) {
    raw->lru_pos = lru_.insert(lru_.end(), key);
    raw->in_lru = true;
    // The entry just inserted sits in the protected MRU window, so this
    // never invalidates the pointer we are about to return.
    MaybeEvictCache();
  }
  *out = raw;
  return Status::OK();
}

Status Transaction::MarkWrite(Oid oid, Cached** out) {
  ODE_RETURN_IF_ERROR(RejectIfSnapshot("write"));
  // Exclusive object lock BEFORE the (possibly shared-locking) load, so a
  // write-after-read upgrades and a blind write never takes S first.
  ODE_RETURN_IF_ERROR(LockObject(oid, concur::LockMode::kExclusive));
  Cached* cached = nullptr;
  ODE_RETURN_IF_ERROR(LoadObject(oid, kGenericVersion, &cached));
  if (!cached->dirty && !cached->is_new && !cached->old_keys_captured) {
    ODE_RETURN_IF_ERROR(db_->indexes().CaptureKeys(oid.cluster, cached->obj,
                                                   &cached->old_index_keys));
    cached->old_keys_captured = true;
  }
  cached->dirty = true;
  *out = cached;
  return Status::OK();
}

void Transaction::DropFromCache(Oid oid) {
  auto it = cache_.lower_bound({oid.Pack(), 0});
  while (it != cache_.end() && it->first.first == oid.Pack()) {
    ForgetLru(it->second.get());
    it = cache_.erase(it);
  }
}

// --- Object operations --------------------------------------------------------

Status Transaction::Delete(const RefBase& ref) {
  if (!open_) return Status::TransactionAborted("transaction is closed");
  ODE_RETURN_IF_ERROR(RejectIfSnapshot("pdelete"));
  if (ref.null()) return Status::InvalidArgument("null reference");
  if (ref.is_specific()) {
    // Paper §4: "Given a version pointer, pdelete deletes the specified
    // version" (not the whole object).
    return DeleteVersion(ref);
  }
  const Oid oid = ref.oid();
  // Deletion shrinks the cluster extent: exclusive object AND cluster locks,
  // plus X on each of the cluster's indexes (tombstone entries are written).
  ODE_RETURN_IF_ERROR(LockObject(oid, concur::LockMode::kExclusive));
  ODE_RETURN_IF_ERROR(LockCluster(oid.cluster, concur::LockMode::kExclusive));
  ODE_RETURN_IF_ERROR(LockIndexesForWrite(oid.cluster));
  // Load for index-entry removal. The index holds entries for the COMMITTED
  // key state: if this transaction already mutated the object's keys (the
  // add entries for the new keys are only written at commit, which a delete
  // now skips), remove by the captured pre-mutation keys, not the cached
  // object's current state.
  Cached* cached = nullptr;
  ODE_RETURN_IF_ERROR(LoadObject(oid, kGenericVersion, &cached));
  if (cached->old_keys_captured) {
    for (const auto& [name, key] : cached->old_index_keys) {
      ODE_RETURN_IF_ERROR(db_->indexes().RemoveEntry(name, key, oid));
    }
  } else {
    ODE_RETURN_IF_ERROR(
        db_->indexes().OnErase(oid.cluster, oid, cached->obj));
  }

  // Remove persistent trigger activations on this object. Probe under our
  // shared schema lock; mutate only under the exclusive upgrade (re-running
  // the removal there, in case the list changed while we waited).
  auto& activations = db_->catalog().triggers;
  const bool any_activations = std::any_of(
      activations.begin(), activations.end(),
      [&](const CatalogData::TriggerActivation& a) {
        return a.cluster == oid.cluster && a.local == oid.local;
      });
  if (any_activations) {
    ODE_RETURN_IF_ERROR(LockSchemaExclusive());
    activations.erase(
        std::remove_if(activations.begin(), activations.end(),
                       [&](const CatalogData::TriggerActivation& a) {
                         return a.cluster == oid.cluster &&
                                a.local == oid.local;
                       }),
        activations.end());
    ODE_RETURN_IF_ERROR(db_->SaveCatalog());
  }

  ODE_ASSIGN_OR_RETURN(PageId root, db_->TableRootOf(oid.cluster));
  ODE_RETURN_IF_ERROR(db_->store().Delete(root, oid.local));
  InvalidateVersionCache(oid);

  // Invalidate every cached version of the object.
  auto it = cache_.lower_bound({oid.Pack(), 0});
  while (it != cache_.end() && it->first.first == oid.Pack()) {
    it->second->deleted = true;
    it->second->dirty = false;
    it->second->is_new = false;
    ++it;
  }
  return Status::OK();
}

Result<bool> Transaction::Exists(const RefBase& ref) {
  if (ref.null()) return false;
  auto head_it = cache_.find({ref.oid().Pack(), kGenericVersion});
  if (head_it != cache_.end()) return !head_it->second->deleted;
  ODE_ASSIGN_OR_RETURN(PageId root, db_->TableRootOf(ref.oid().cluster));
  ObjectTable::Entry entry;
  if (snapshot_) {
    Status s = db_->store().ResolveSnapshot(root, ref.oid().local,
                                            kGenericVersion, snapshot_seq_,
                                            &entry);
    if (s.IsNotFound()) return false;
    ODE_RETURN_IF_ERROR(s);
    return true;
  }
  ODE_RETURN_IF_ERROR(LockObject(ref.oid(), concur::LockMode::kShared));
  Status s = db_->store().GetInfo(root, ref.oid().local, &entry);
  if (s.IsNotFound()) return false;
  ODE_RETURN_IF_ERROR(s);
  return !entry.is_version();
}

// --- Raw (untyped) record operations ----------------------------------------

Status Transaction::RejectIfClusterIndexed(ClusterId cluster,
                                           const char* op) const {
  for (const CatalogData::IndexEntry& index : db_->catalog().indexes) {
    if (index.cluster == cluster) {
      return Status::NotSupported(
          std::string(op) + ": cluster " + std::to_string(cluster) +
          " has index '" + index.name +
          "' and raw mutations cannot maintain it (no key extractor in "
          "this process); use the typed API");
    }
  }
  return Status::OK();
}

Result<Transaction::RawRecord> Transaction::ReadRaw(Oid oid, uint32_t vnum) {
  if (!open_) return Status::TransactionAborted("transaction is closed");
  if (!oid.valid()) return Status::InvalidArgument("invalid object id");
  ODE_ASSIGN_OR_RETURN(PageId root, db_->TableRootOf(oid.cluster));
  RawRecord rec;
  if (snapshot_) {
    ODE_RETURN_IF_ERROR(db_->store().ReadSnapshot(root, oid.local, vnum,
                                                  snapshot_seq_, &rec.bytes,
                                                  &rec.type_code, &rec.vnum));
    db_->core_metrics().snapshot_reads->Add();
  } else {
    ODE_RETURN_IF_ERROR(LockObject(oid, concur::LockMode::kShared));
    ODE_RETURN_IF_ERROR(db_->store().Read(root, oid.local, vnum, &rec.bytes,
                                          &rec.type_code, &rec.vnum));
  }
  return rec;
}

Status Transaction::WriteRaw(Oid oid, const Slice& bytes) {
  if (!open_) return Status::TransactionAborted("transaction is closed");
  ODE_RETURN_IF_ERROR(RejectIfSnapshot("raw write"));
  if (!oid.valid()) return Status::InvalidArgument("invalid object id");
  ODE_RETURN_IF_ERROR(RejectIfClusterIndexed(oid.cluster, "raw write"));
  ODE_RETURN_IF_ERROR(LockObject(oid, concur::LockMode::kExclusive));
  ODE_ASSIGN_OR_RETURN(PageId root, db_->TableRootOf(oid.cluster));
  ODE_RETURN_IF_ERROR(db_->store().Update(root, oid.local, bytes));
  // A typed cache copy (same transaction mixing APIs) must not flush over
  // the raw bytes at commit, and vprev/vnext caches are stale now.
  DropFromCache(oid);
  InvalidateVersionCache(oid);
  return Status::OK();
}

Result<Oid> Transaction::InsertRaw(ClusterId cluster, const Slice& bytes) {
  if (!open_) return Status::TransactionAborted("transaction is closed");
  ODE_RETURN_IF_ERROR(RejectIfSnapshot("raw insert"));
  const CatalogData::ClusterEntry* entry = db_->catalog().FindCluster(cluster);
  if (entry == nullptr) {
    return Status::NotFound("no cluster " + std::to_string(cluster));
  }
  ODE_RETURN_IF_ERROR(RejectIfClusterIndexed(cluster, "raw insert"));
  ODE_RETURN_IF_ERROR(LockClusterForCreation(cluster));
  const CatalogData::TypeEntry* type_entry =
      db_->catalog().FindType(entry->type_name);
  if (type_entry == nullptr) {
    return Status::Corruption("cluster " + std::to_string(cluster) +
                              " type '" + entry->type_name + "' has no code");
  }
  ODE_ASSIGN_OR_RETURN(PageId root, db_->TableRootOf(cluster));
  LocalOid local;
  ODE_RETURN_IF_ERROR(
      db_->store().Insert(root, type_entry->code, bytes, &local));
  const Oid oid{cluster, local};
  ODE_RETURN_IF_ERROR(LockObject(oid, concur::LockMode::kExclusive));
  return oid;
}

Status Transaction::DeleteRaw(Oid oid) {
  if (!open_) return Status::TransactionAborted("transaction is closed");
  ODE_RETURN_IF_ERROR(RejectIfSnapshot("raw delete"));
  if (!oid.valid()) return Status::InvalidArgument("invalid object id");
  ODE_RETURN_IF_ERROR(RejectIfClusterIndexed(oid.cluster, "raw delete"));
  ODE_RETURN_IF_ERROR(LockObject(oid, concur::LockMode::kExclusive));
  ODE_RETURN_IF_ERROR(LockCluster(oid.cluster, concur::LockMode::kExclusive));
  // Persistent trigger activations die with the object, exactly as in the
  // typed Delete path.
  auto& activations = db_->catalog().triggers;
  const bool any_activations = std::any_of(
      activations.begin(), activations.end(),
      [&](const CatalogData::TriggerActivation& a) {
        return a.cluster == oid.cluster && a.local == oid.local;
      });
  if (any_activations) {
    ODE_RETURN_IF_ERROR(LockSchemaExclusive());
    activations.erase(
        std::remove_if(activations.begin(), activations.end(),
                       [&](const CatalogData::TriggerActivation& a) {
                         return a.cluster == oid.cluster &&
                                a.local == oid.local;
                       }),
        activations.end());
    ODE_RETURN_IF_ERROR(db_->SaveCatalog());
  }
  ODE_ASSIGN_OR_RETURN(PageId root, db_->TableRootOf(oid.cluster));
  ODE_RETURN_IF_ERROR(db_->store().Delete(root, oid.local));
  InvalidateVersionCache(oid);
  DropFromCache(oid);
  return Status::OK();
}

// --- Versioning ------------------------------------------------------------------

Result<uint32_t> Transaction::NewVersion(const RefBase& ref) {
  if (!open_) return Status::TransactionAborted("transaction is closed");
  ODE_RETURN_IF_ERROR(RejectIfSnapshot("newversion"));
  if (ref.is_specific()) {
    return Status::InvalidArgument("newversion takes a generic reference");
  }
  const Oid oid = ref.oid();
  ODE_RETURN_IF_ERROR(LockObject(oid, concur::LockMode::kExclusive));
  // Pending in-memory changes must reach the store before the snapshot.
  auto it = cache_.find({oid.Pack(), kGenericVersion});
  if (it != cache_.end()) {
    if (it->second->deleted) return Status::NotFound("object was deleted");
    if (it->second->dirty || it->second->is_new) {
      ODE_RETURN_IF_ERROR(FlushObject(oid, *it->second));
    }
  }
  ODE_ASSIGN_OR_RETURN(PageId root, db_->TableRootOf(oid.cluster));
  uint32_t new_vnum = 0;
  ODE_RETURN_IF_ERROR(db_->store().NewVersion(root, oid.local, &new_vnum));
  InvalidateVersionCache(oid);
  if (it != cache_.end()) it->second->resolved_vnum = new_vnum;
  return new_vnum;
}

Status Transaction::DeleteVersion(const RefBase& ref) {
  if (!open_) return Status::TransactionAborted("transaction is closed");
  ODE_RETURN_IF_ERROR(RejectIfSnapshot("delversion"));
  if (!ref.is_specific()) {
    return Status::InvalidArgument("delversion takes a version reference");
  }
  // delversion frees the version's storage physically (unlike pdelete's
  // tombstone): it cannot run while any snapshot might still resolve the
  // doomed version. BeginStructureOp checks the active-snapshot set and
  // registers the barrier under one critical section — a racing snapshot
  // begin gets a clean Busy instead of observing a mid-flight structure.
  // Busy here lets RunTransaction retry once readers drain.
  ODE_RETURN_IF_ERROR(db_->engine().BeginStructureOp());
  const Oid oid = ref.oid();
  ODE_RETURN_IF_ERROR(LockObject(oid, concur::LockMode::kExclusive));
  ODE_ASSIGN_OR_RETURN(PageId root, db_->TableRootOf(oid.cluster));

  ObjectTable::Entry head;
  ODE_RETURN_IF_ERROR(db_->store().GetInfo(root, oid.local, &head));
  const bool deletes_current = ref.vnum() == head.vnum;

  // Index pre-images: deleting the current version promotes older content,
  // which is an update as far as secondary indexes are concerned.
  std::vector<std::pair<std::string, std::string>> old_keys;
  if (deletes_current) {
    Cached* current = nullptr;
    ODE_RETURN_IF_ERROR(LoadObject(oid, kGenericVersion, &current));
    if (current->old_keys_captured) {
      old_keys = current->old_index_keys;
    } else {
      ODE_RETURN_IF_ERROR(
          db_->indexes().CaptureKeys(oid.cluster, current->obj, &old_keys));
    }
    if (current->dirty) {
      ODE_RETURN_IF_ERROR(FlushObject(oid, *current));
    }
  } else {
    auto head_it = cache_.find({oid.Pack(), kGenericVersion});
    if (head_it != cache_.end()) {
      if (head_it->second->deleted) return Status::NotFound("object deleted");
      if (head_it->second->dirty) {
        ODE_RETURN_IF_ERROR(FlushObject(oid, *head_it->second));
      }
    }
  }

  ODE_RETURN_IF_ERROR(db_->store().DeleteVersion(root, oid.local, ref.vnum()));
  InvalidateVersionCache(oid);
  EraseCacheKey({oid.Pack(), ref.vnum()});

  if (deletes_current) {
    // Reload the promoted state and mark it dirty carrying the pre-delete
    // index keys, so commit re-points the indexes at the promoted content.
    EraseCacheKey({oid.Pack(), kGenericVersion});
    Cached* promoted = nullptr;
    ODE_RETURN_IF_ERROR(LoadObject(oid, kGenericVersion, &promoted));
    promoted->dirty = true;
    promoted->old_index_keys = std::move(old_keys);
    promoted->old_keys_captured = true;
  }
  return Status::OK();
}

Status Transaction::RevertToVersion(const RefBase& ref, uint32_t vnum) {
  if (!open_) return Status::TransactionAborted("transaction is closed");
  ODE_RETURN_IF_ERROR(RejectIfSnapshot("revert"));
  if (ref.is_specific()) {
    return Status::InvalidArgument("revert takes a generic reference");
  }
  InvalidateVersionCache(ref.oid());
  // Write path: captures index pre-images and marks the object dirty, so
  // commit flushes the reverted state and fixes index entries.
  Cached* cached = nullptr;
  ODE_RETURN_IF_ERROR(MarkWrite(ref.oid(), &cached));
  ODE_ASSIGN_OR_RETURN(PageId root, db_->TableRootOf(ref.oid().cluster));
  std::string bytes;
  uint32_t type_code = 0, resolved = 0;
  ODE_RETURN_IF_ERROR(db_->store().Read(root, ref.oid().local, vnum, &bytes,
                                        &type_code, &resolved));
  // Record the derivation edge: the current content now stems from `vnum`
  // (the version-tree extension, paper footnote 15).
  ODE_RETURN_IF_ERROR(db_->store().SetDerivation(root, ref.oid().local, vnum));
  // Deserialize the historical state into the cached (current) object.
  return cached->type->deserialize(Slice(bytes), db_, cached->obj);
}

Result<uint32_t> Transaction::CurrentVnum(const RefBase& ref) {
  auto it = cache_.find({ref.oid().Pack(), kGenericVersion});
  if (it != cache_.end() && !it->second->deleted) {
    return it->second->resolved_vnum;
  }
  ODE_ASSIGN_OR_RETURN(PageId root, db_->TableRootOf(ref.oid().cluster));
  ObjectTable::Entry entry;
  if (snapshot_) {
    ODE_RETURN_IF_ERROR(db_->store().ResolveSnapshot(
        root, ref.oid().local, kGenericVersion, snapshot_seq_, &entry));
    return entry.vnum;
  }
  ODE_RETURN_IF_ERROR(LockObject(ref.oid(), concur::LockMode::kShared));
  ODE_RETURN_IF_ERROR(db_->store().GetInfo(root, ref.oid().local, &entry));
  return entry.vnum;
}

Result<std::string> Transaction::DynamicTypeOf(const RefBase& ref) {
  auto it = cache_.find({ref.oid().Pack(), kGenericVersion});
  if (it != cache_.end() && !it->second->deleted) {
    return it->second->type->name;
  }
  ODE_ASSIGN_OR_RETURN(PageId root, db_->TableRootOf(ref.oid().cluster));
  ObjectTable::Entry entry;
  if (snapshot_) {
    ODE_RETURN_IF_ERROR(db_->store().ResolveSnapshot(
        root, ref.oid().local, kGenericVersion, snapshot_seq_, &entry));
  } else {
    ODE_RETURN_IF_ERROR(LockObject(ref.oid(), concur::LockMode::kShared));
    ODE_RETURN_IF_ERROR(db_->store().GetInfo(root, ref.oid().local, &entry));
  }
  return db_->TypeNameByCode(entry.type_code);
}

// --- Versioning navigation cache ---------------------------------------------

Status Transaction::CachedVersions(const RefBase& ref,
                                   const std::vector<uint32_t>** vnums) {
  const uint64_t key = ref.oid().Pack();
  auto it = version_cache_.find(key);
  if (it == version_cache_.end()) {
    ODE_ASSIGN_OR_RETURN(PageId root, db_->TableRootOf(ref.oid().cluster));
    std::vector<uint32_t> listed;
    ODE_RETURN_IF_ERROR(
        db_->store().ListVersions(root, ref.oid().local, &listed));
    it = version_cache_.emplace(key, std::move(listed)).first;
  }
  *vnums = &it->second;
  return Status::OK();
}

Result<uint32_t> Transaction::PrevVersionOf(const RefBase& ref, uint32_t vnum) {
  const std::vector<uint32_t>* vnums = nullptr;
  ODE_RETURN_IF_ERROR(CachedVersions(ref, &vnums));
  // The list is ascending: the predecessor is the element before the first
  // one >= vnum.
  auto it = std::lower_bound(vnums->begin(), vnums->end(), vnum);
  if (it == vnums->begin()) return Status::NotFound("no previous version");
  return *(it - 1);
}

Result<uint32_t> Transaction::NextVersionOf(const RefBase& ref, uint32_t vnum) {
  const std::vector<uint32_t>* vnums = nullptr;
  ODE_RETURN_IF_ERROR(CachedVersions(ref, &vnums));
  auto it = std::upper_bound(vnums->begin(), vnums->end(), vnum);
  if (it == vnums->end()) return Status::NotFound("no next version");
  return *it;
}

// --- Schema ------------------------------------------------------------------------

Status Transaction::CreateClusterByName(const std::string& type_name) {
  if (TypeRegistry::Global().Find(type_name) == nullptr) {
    return Status::NotSupported("type not registered: " + type_name);
  }
  return CreateClusterRaw(type_name);
}

Status Transaction::CreateClusterRaw(const std::string& type_name) {
  if (!open_) return Status::TransactionAborted("transaction is closed");
  ODE_RETURN_IF_ERROR(RejectIfSnapshot("create cluster"));
  if (db_->catalog().FindClusterByType(type_name) != nullptr) {
    return Status::AlreadyExists("cluster for " + type_name);
  }
  ODE_RETURN_IF_ERROR(LockSchemaExclusive());
  if (db_->catalog().FindClusterByType(type_name) != nullptr) {
    return Status::AlreadyExists("cluster for " + type_name);  // lost a race
  }
  ODE_ASSIGN_OR_RETURN(uint32_t code, db_->EnsureTypeCode(type_name));
  (void)code;
  PageId root;
  ODE_RETURN_IF_ERROR(db_->store().CreateTable(&root));
  CatalogData::ClusterEntry entry;
  entry.id = db_->catalog().next_cluster_id++;
  entry.type_name = type_name;
  entry.table_root = root;
  db_->catalog().clusters.push_back(entry);
  return db_->SaveCatalog();
}

Status Transaction::DropClusterByName(const std::string& type_name) {
  if (!open_) return Status::TransactionAborted("transaction is closed");
  ODE_RETURN_IF_ERROR(RejectIfSnapshot("drop cluster"));
  // Dropping frees every object's storage physically, bypassing the
  // tombstone/GC protocol — it cannot run under active snapshot readers.
  // BeginStructureOp couples the snapshot-count check with registering the
  // barrier in one critical section, so a concurrently-beginning snapshot
  // either blocks this drop or gets Busy itself — never a torn structure.
  ODE_RETURN_IF_ERROR(db_->engine().BeginStructureOp());
  ODE_RETURN_IF_ERROR(LockSchemaExclusive());
  ODE_ASSIGN_OR_RETURN(ClusterId cluster, db_->ClusterIdForName(type_name));
  ODE_RETURN_IF_ERROR(LockCluster(cluster, concur::LockMode::kExclusive));
  ODE_ASSIGN_OR_RETURN(PageId root, db_->TableRootOf(cluster));

  // Indexes on the cluster go wholesale (no per-object maintenance needed).
  std::vector<std::string> index_names;
  for (const auto& index : db_->catalog().indexes) {
    if (index.cluster == cluster) index_names.push_back(index.name);
  }
  for (const auto& name : index_names) {
    ODE_RETURN_IF_ERROR(db_->indexes().DropIndex(name));
  }

  // Trigger activations on the cluster's objects.
  auto& activations = db_->catalog().triggers;
  activations.erase(
      std::remove_if(activations.begin(), activations.end(),
                     [&](const CatalogData::TriggerActivation& a) {
                       return a.cluster == cluster;
                     }),
      activations.end());

  // Storage, then the catalog entry.
  ODE_RETURN_IF_ERROR(db_->store().DropTable(root));
  auto& clusters = db_->catalog().clusters;
  for (auto it = clusters.begin(); it != clusters.end(); ++it) {
    if (it->id == cluster) {
      clusters.erase(it);
      break;
    }
  }
  ODE_RETURN_IF_ERROR(db_->SaveCatalog());

  version_cache_.clear();
  // Invalidate cached objects of the dropped cluster.
  for (auto& [key, cached] : cache_) {
    if (Oid::Unpack(key.first).cluster == cluster) {
      cached->deleted = true;
      cached->dirty = false;
      cached->is_new = false;
    }
  }
  return Status::OK();
}

Status Transaction::CreateIndexByName(const std::string& index_name,
                                      const std::string& type_name,
                                      IndexManager::Extractor extractor) {
  if (!open_) return Status::TransactionAborted("transaction is closed");
  ODE_RETURN_IF_ERROR(RejectIfSnapshot("create index"));
  ODE_RETURN_IF_ERROR(LockSchemaExclusive());
  ODE_ASSIGN_OR_RETURN(ClusterId cluster, db_->ClusterIdForName(type_name));
  ODE_RETURN_IF_ERROR(LockCluster(cluster, concur::LockMode::kExclusive));
  ODE_RETURN_IF_ERROR(
      db_->indexes().CreateIndex(index_name, cluster, extractor));
  // Backfill existing objects.
  LocalOid at = 0;
  while (true) {
    bool found = false;
    LocalOid local;
    ODE_RETURN_IF_ERROR(NextInCluster(cluster, at, &local, &found));
    if (!found) break;
    const Oid oid{cluster, local};
    Cached* cached = nullptr;
    ODE_RETURN_IF_ERROR(LoadObject(oid, kGenericVersion, &cached));
    ODE_RETURN_IF_ERROR(db_->indexes().AddEntry(
        index_name, extractor(cached->obj), oid));
    at = local + 1;
  }
  return Status::OK();
}

// --- Triggers ------------------------------------------------------------------------

Result<uint64_t> Transaction::ActivateTriggerOn(const RefBase& ref,
                                                const std::string& trigger_name,
                                                std::vector<double> params,
                                                bool perpetual) {
  if (!open_) return Status::TransactionAborted("transaction is closed");
  ODE_RETURN_IF_ERROR(RejectIfSnapshot("trigger activation"));
  ODE_ASSIGN_OR_RETURN(bool exists, Exists(ref));
  if (!exists) return Status::NotFound("object " + ref.oid().ToString());
  ODE_ASSIGN_OR_RETURN(std::string dynamic_type, DynamicTypeOf(ref));
  if (db_->triggers().Resolve(TypeRegistry::Global(), dynamic_type,
                              trigger_name) == nullptr) {
    return Status::NotFound("trigger definition '" + trigger_name +
                            "' for class " + dynamic_type);
  }
  ODE_RETURN_IF_ERROR(LockSchemaExclusive());
  ODE_ASSIGN_OR_RETURN(uint64_t id, db_->NextTriggerId());
  CatalogData::TriggerActivation activation;
  activation.trigger_id = id;
  activation.cluster = ref.oid().cluster;
  activation.local = ref.oid().local;
  activation.trigger_name = trigger_name;
  activation.perpetual = perpetual;
  activation.params = std::move(params);
  db_->catalog().triggers.push_back(std::move(activation));
  ODE_RETURN_IF_ERROR(db_->SaveCatalog());
  return id;
}

Status Transaction::DeactivateTrigger(uint64_t trigger_id) {
  if (!open_) return Status::TransactionAborted("transaction is closed");
  ODE_RETURN_IF_ERROR(RejectIfSnapshot("trigger deactivation"));
  ODE_RETURN_IF_ERROR(LockSchemaExclusive());
  auto& activations = db_->catalog().triggers;
  for (auto it = activations.begin(); it != activations.end(); ++it) {
    if (it->trigger_id == trigger_id) {
      activations.erase(it);
      return db_->SaveCatalog();
    }
  }
  return Status::NotFound("trigger " + std::to_string(trigger_id));
}

Result<size_t> Transaction::DeactivateTriggersOn(
    const RefBase& ref, const std::string& trigger_name) {
  if (!open_) return Status::TransactionAborted("transaction is closed");
  ODE_RETURN_IF_ERROR(RejectIfSnapshot("trigger deactivation"));
  ODE_RETURN_IF_ERROR(LockSchemaExclusive());
  auto& activations = db_->catalog().triggers;
  const size_t before = activations.size();
  activations.erase(
      std::remove_if(activations.begin(), activations.end(),
                     [&](const CatalogData::TriggerActivation& a) {
                       return a.cluster == ref.oid().cluster &&
                              a.local == ref.oid().local &&
                              a.trigger_name == trigger_name;
                     }),
      activations.end());
  const size_t removed = before - activations.size();
  if (removed > 0) {
    ODE_RETURN_IF_ERROR(db_->SaveCatalog());
  }
  return removed;
}

size_t Transaction::ActiveTriggerCount(const RefBase& ref) const {
  size_t count = 0;
  for (const auto& a : db_->catalog().triggers) {
    if (a.cluster == ref.oid().cluster && a.local == ref.oid().local) count++;
  }
  return count;
}

// --- Scan support -----------------------------------------------------------------------

Status Transaction::NextInCluster(ClusterId cluster, LocalOid start,
                                  LocalOid* local, bool* found) {
  ODE_ASSIGN_OR_RETURN(PageId root, db_->TableRootOf(cluster));
  if (snapshot_) {
    // No cluster lock: the scan enumerates tombstones too and each object's
    // visibility is resolved against the snapshot by the read that follows
    // (an older snapshot may still see content behind a tombstone).
    return db_->store().NextHead(root, start, local, found,
                                 /*include_tombstones=*/true);
  }
  // Scan stability: block concurrent insert/delete into the cluster (which
  // take it exclusive) for the rest of this transaction.
  ODE_RETURN_IF_ERROR(LockCluster(cluster, concur::LockMode::kShared));
  return db_->store().NextHead(root, start, local, found);
}

Status Transaction::DropIndex(const std::string& name) {
  if (!open_) return Status::TransactionAborted("transaction is closed");
  ODE_RETURN_IF_ERROR(RejectIfSnapshot("drop index"));
  ODE_RETURN_IF_ERROR(LockSchemaExclusive());
  return db_->indexes().DropIndex(name);
}

// --- Commit path -------------------------------------------------------------------------

Status Transaction::FlushObject(Oid oid, Cached& cached) {
  std::string bytes;
  cached.type->serialize(cached.obj, &bytes);
  ODE_ASSIGN_OR_RETURN(PageId root, db_->TableRootOf(oid.cluster));
  return db_->store().Update(root, oid.local, Slice(bytes));
}

Status Transaction::CheckConstraints() {
  const auto& registry = TypeRegistry::Global();
  for (auto& [key, cached] : cache_) {
    if (key.second != kGenericVersion) continue;
    if (cached->deleted || !(cached->dirty || cached->is_new)) continue;
    db_->core_metrics().constraint_checks->Add();
    Status s =
        db_->constraints().Check(registry, cached->type->name, cached->obj);
    if (!s.ok()) {
      db_->core_metrics().constraint_violations->Add();
      return s;
    }
  }
  return Status::OK();
}

Status Transaction::MaintainIndexes() {
  // Acquire all per-index X locks up front (deterministic acquisition
  // order before any tree mutation), then write the entries.
  for (auto& [key, cached] : cache_) {
    if (key.second != kGenericVersion || cached->deleted) continue;
    if (!cached->is_new && !cached->dirty) continue;
    ODE_RETURN_IF_ERROR(
        LockIndexesForWrite(Oid::Unpack(key.first).cluster));
  }
  for (auto& [key, cached] : cache_) {
    if (key.second != kGenericVersion || cached->deleted) continue;
    const Oid oid = Oid::Unpack(key.first);
    if (cached->is_new) {
      ODE_RETURN_IF_ERROR(
          db_->indexes().OnInsert(oid.cluster, oid, cached->obj));
    } else if (cached->dirty) {
      ODE_RETURN_IF_ERROR(db_->indexes().OnUpdate(
          oid.cluster, oid, cached->old_index_keys, cached->obj));
    }
  }
  return Status::OK();
}

Status Transaction::EvaluateTriggers(std::vector<Database::Firing>* fired) {
  fired->clear();
  auto& activations = db_->catalog().triggers;
  if (activations.empty()) return Status::OK();
  const auto& registry = TypeRegistry::Global();

  std::vector<uint64_t> deactivated;
  for (const auto& activation : activations) {
    const Oid oid{activation.cluster, activation.local};
    auto it = cache_.find({oid.Pack(), kGenericVersion});
    if (it == cache_.end()) continue;  // Object not touched this txn.
    Cached& cached = *it->second;
    if (cached.deleted || !(cached.dirty || cached.is_new)) continue;

    const TriggerRegistry::Definition* def = db_->triggers().Resolve(
        registry, cached.type->name, activation.trigger_name);
    if (def == nullptr) {
      ODE_LOG(kWarn) << "active trigger '" << activation.trigger_name
                     << "' has no definition in this program; skipping";
      continue;
    }
    void* as_def_type =
        registry.Upcast(cached.obj, cached.type->name, def->type_name);
    if (as_def_type == nullptr) continue;
    if (!def->condition(as_def_type, activation.params)) continue;

    fired->push_back(Database::Firing{def, activation.trigger_id, oid,
                                      activation.params});
    if (!activation.perpetual) {
      deactivated.push_back(activation.trigger_id);
    }
  }
  if (!deactivated.empty()) {
    // Once-only activations burn at fire time: a catalog mutation, so the
    // schema lock upgrades to exclusive first.
    ODE_RETURN_IF_ERROR(LockSchemaExclusive());
    activations.erase(
        std::remove_if(activations.begin(), activations.end(),
                       [&](const CatalogData::TriggerActivation& a) {
                         return std::find(deactivated.begin(),
                                          deactivated.end(),
                                          a.trigger_id) != deactivated.end();
                       }),
        activations.end());
    ODE_RETURN_IF_ERROR(db_->SaveCatalog());
  }
  return Status::OK();
}

Status Transaction::Commit() {
  if (!open_) return Status::TransactionAborted("transaction is closed");
  const auto commit_start = std::chrono::steady_clock::now();
  if (snapshot_) {
    // Nothing written, nothing to flush or check; the engine commit is a
    // cheap no-shadow close and CloseOut drops the snapshot registration.
    Status committed = db_->engine().CommitTxn(txn_id_,
                                               /*release_locks=*/false);
    if (!committed.ok()) {
      Status aborted = Abort();
      if (!aborted.ok()) {
        ODE_LOG(kError) << "abort after failed snapshot commit also failed: "
                        << aborted.ToString();
      }
      return committed;
    }
    return CloseOut(/*aborted=*/false);
  }
  if (db_->options().check_constraints) {
    Status s = CheckConstraints();
    if (!s.ok()) {
      // §5: the violation aborts the transaction, and the *violation* is
      // what the caller must see — a secondary failure while rolling back
      // (e.g. an I/O error reloading a dirty catalog) must not mask it.
      // Propagating the abort status here used to do exactly that.
      Status aborted = Abort();
      if (!aborted.ok()) {
        ODE_LOG(kError) << "abort after constraint violation also failed: "
                        << aborted.ToString();
      }
      return s;
    }
  }
  // Flush the write set.
  for (auto& [key, cached] : cache_) {
    if (key.second != kGenericVersion || cached->deleted) continue;
    if (cached->dirty || cached->is_new) {
      ODE_RETURN_IF_ERROR(FlushObject(Oid::Unpack(key.first), *cached));
    }
  }
  ODE_RETURN_IF_ERROR(MaintainIndexes());
  std::vector<Database::Firing> fired;
  ODE_RETURN_IF_ERROR(EvaluateTriggers(&fired));

  // Keep our locks across the engine commit; CloseOut releases them after
  // the core layer is fully done (2PL release point). Cluster locks held
  // only for object creation are handed to the engine for release at the
  // publish point — before the group-commit durability wait — so
  // concurrent inserters into the same cluster can share one fsync.
  std::vector<concur::ResourceId> publish_release;
  for (ClusterId cluster : creation_clusters_) {
    publish_release.push_back(concur::ClusterResource(cluster));
  }
  Status committed = db_->engine().CommitTxn(
      txn_id_, /*release_locks=*/false,
      publish_release.empty() ? nullptr : &publish_release);
  if (!committed.ok()) {
    // The engine degraded the commit to a rollback (or refused it); the
    // in-memory catalog still reflects this transaction's writes, so abort
    // at this layer too to reload it. The commit error is what the caller
    // needs to see, not any secondary abort failure.
    Status aborted = Abort();
    if (!aborted.ok()) {
      ODE_LOG(kError) << "abort after failed commit also failed: "
                      << aborted.ToString();
    }
    return committed;
  }
  ODE_RETURN_IF_ERROR(CloseOut(/*aborted=*/false));
  db_->core_metrics().commit_us->Add(static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - commit_start)
          .count()));

  if (!fired.empty()) {
    db_->core_metrics().trigger_firings->Add(fired.size());
    if (db_->options().run_triggers_on_commit) {
      db_->ExecuteFirings(std::move(fired));
    } else {
      MutexLock lock(db_->pending_mu_);
      for (auto& f : fired) db_->pending_firings_.push_back(std::move(f));
    }
  }
  return Status::OK();
}

Status Transaction::Abort() {
  if (!open_) return Status::TransactionAborted("transaction is closed");
  const bool reload_catalog = catalog_dirty_;
  // A failed CommitTxn already rolled the engine back; only abort the
  // engine-level transaction if it is still ours. Locks stay held until
  // CloseOut — the catalog reload below must happen under them.
  if (db_->engine().in_txn() && db_->engine().active_txn() == txn_id_) {
    ODE_RETURN_IF_ERROR(db_->engine().AbortTxn(txn_id_,
                                               /*release_locks=*/false));
  }
  if (reload_catalog) {
    // We mutated the shared in-memory catalog (under the exclusive schema
    // lock, which we still hold — no one can observe the reload mid-way).
    ODE_RETURN_IF_ERROR(db_->ReloadCatalog());
  }
  return CloseOut(/*aborted=*/true);
}

}  // namespace ode
