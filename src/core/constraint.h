#ifndef ODE_CORE_CONSTRAINT_H_
#define ODE_CORE_CONSTRAINT_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "schema/type_registry.h"
#include "util/status.h"

namespace ode {

/// Class-level constraints (paper §5). A constraint is a named boolean
/// predicate attached to a class; every object of the class — including
/// objects of derived classes, which is what enables constraint-based
/// specialization like `class female : public person` — must satisfy it at
/// the end of each transaction. A violation aborts and rolls back the
/// transaction.
///
/// Constraints are code, so (like the O++ compiler would) applications
/// register them at startup; the registry lives on the Database instance.
class ConstraintRegistry {
 public:
  /// Type-erased predicate: the argument points to an object of exactly the
  /// class the constraint was registered for.
  using Predicate = std::function<bool(const void*)>;

  /// Registers `pred` for class `type_name` under `constraint_name`.
  void Add(const std::string& type_name, const std::string& constraint_name,
           Predicate pred);

  /// Checks every constraint of `dynamic_type` and its (transitive) base
  /// classes against `obj` (a pointer to the dynamic type). On failure
  /// returns ConstraintViolation naming the offending constraint.
  Status Check(const TypeRegistry& registry, const std::string& dynamic_type,
               void* obj) const;

  /// Number of constraints that apply to `dynamic_type` (diagnostics).
  size_t CountFor(const TypeRegistry& registry,
                  const std::string& dynamic_type) const;

  bool empty() const { return by_type_.empty(); }

 private:
  struct Entry {
    std::string name;
    Predicate pred;
  };

  std::map<std::string, std::vector<Entry>> by_type_;
};

}  // namespace ode

#endif  // ODE_CORE_CONSTRAINT_H_
