#ifndef ODE_CORE_OPTIONS_H_
#define ODE_CORE_OPTIONS_H_

#include "storage/engine.h"

namespace ode {

/// Configuration for opening an ODE database.
struct DatabaseOptions {
  EngineOptions engine;

  /// Evaluate class constraints on the write set at commit (paper §5).
  /// Disabling is for benchmarking the checking overhead only.
  bool check_constraints = true;

  /// Run fired trigger actions (as independent transactions) right after the
  /// triggering transaction commits — the paper's weak coupling (§6).
  /// When false, fired actions queue up until RunPendingTriggers().
  bool run_triggers_on_commit = true;

  /// Bound on trigger cascades (action transactions firing more triggers).
  /// Beyond this depth further firings are dropped with a warning.
  int max_trigger_cascade_depth = 16;
};

}  // namespace ode

#endif  // ODE_CORE_OPTIONS_H_
