#ifndef ODE_CORE_OPTIONS_H_
#define ODE_CORE_OPTIONS_H_

#include "storage/engine.h"

namespace ode {

/// Configuration for opening an ODE database.
struct DatabaseOptions {
  EngineOptions engine;

  /// Evaluate class constraints on the write set at commit (paper §5).
  /// Disabling is for benchmarking the checking overhead only.
  bool check_constraints = true;

  /// Run fired trigger actions (as independent transactions) right after the
  /// triggering transaction commits — the paper's weak coupling (§6).
  /// When false, fired actions queue up until RunPendingTriggers().
  bool run_triggers_on_commit = true;

  /// Bound on trigger cascades (action transactions firing more triggers).
  /// Beyond this depth further firings are dropped with a warning.
  int max_trigger_cascade_depth = 16;

  /// Bound on the per-transaction deserialized-object cache. 0 (the
  /// default) keeps every object a transaction touches, matching historical
  /// behavior. A positive value (clamped up to a small floor so in-flight
  /// reads stay valid) evicts the least-recently-read *clean* objects once
  /// the cache outgrows it — dirty, new and deleted entries are never
  /// evicted, so commit/abort semantics are unchanged. With a bound set,
  /// `const T*` pointers from Transaction::Read stay valid only until the
  /// next Read/Write call; query helpers (ForAll, joins) honor that
  /// contract. Ordered (`By`) materialization pins its working set for the
  /// duration of the sort regardless of the bound.
  size_t max_cached_objects = 0;

  /// RunTransaction retries the body this many times when the transaction
  /// loses a deadlock (Status::Deadlock) or times out waiting for a lock
  /// (Status::Busy), with jittered exponential backoff between attempts.
  /// 0 disables retrying.
  int max_txn_retries = 8;

  /// Object→cluster lock escalation: once a transaction has taken this many
  /// object locks in one cluster, it trades them for a single cluster lock
  /// (same mode) and stops tracking individual objects there — shrinking
  /// lock tables for bulk scans/updates at the cost of coarser conflicts.
  /// 0 disables escalation.
  size_t lock_escalation_threshold = 0;

  /// Worker threads for the asynchronous trigger executor. 0 (the default)
  /// runs fired trigger actions synchronously on the committing thread —
  /// the historical behavior. A positive value enqueues each firing to a
  /// bounded daemon pool that runs it as an independent transaction (the
  /// paper's weak coupling, §6, without blocking the committer). Call
  /// Database::DrainTriggers() to wait for queued actions.
  int trigger_executor_threads = 0;

  /// Bound on the async trigger queue; committers block (briefly) when it
  /// is full rather than queueing unbounded work.
  size_t trigger_queue_capacity = 256;

  /// Async trigger actions that lose a deadlock or time out retry this many
  /// times before the firing is dropped with a warning.
  int trigger_max_retries = 5;

  /// Background version-GC cadence: when positive, a daemon thread runs
  /// CollectVersionGarbage every this-many milliseconds, keeping MVCC
  /// debris (dead object versions, superseded index entries, vacated entry
  /// pages) off the commit path. 0 (the default) disables the thread;
  /// CollectVersionGarbage can still be called manually. Passes that find a
  /// session active on this thread or lose lock races simply skip a tick.
  int gc_interval_ms = 0;
};

}  // namespace ode

#endif  // ODE_CORE_OPTIONS_H_
