#include "core/constraint.h"

namespace ode {

namespace {

/// Collects `type` and all transitive bases into `out` (depth-first, with
/// duplicates removed by the caller's use pattern: diamond bases may appear
/// twice, which only costs a re-check).
void CollectBases(const TypeRegistry& registry, const std::string& type,
                  std::vector<std::string>* out) {
  out->push_back(type);
  const TypeInfo* info = registry.Find(type);
  if (info == nullptr) return;
  for (const auto& link : info->bases) {
    CollectBases(registry, link.base_name, out);
  }
}

}  // namespace

void ConstraintRegistry::Add(const std::string& type_name,
                             const std::string& constraint_name,
                             Predicate pred) {
  by_type_[type_name].push_back(Entry{constraint_name, std::move(pred)});
}

Status ConstraintRegistry::Check(const TypeRegistry& registry,
                                 const std::string& dynamic_type,
                                 void* obj) const {
  if (by_type_.empty()) return Status::OK();
  std::vector<std::string> lineage;
  CollectBases(registry, dynamic_type, &lineage);
  for (const auto& type : lineage) {
    auto it = by_type_.find(type);
    if (it == by_type_.end()) continue;
    void* as_base = registry.Upcast(obj, dynamic_type, type);
    if (as_base == nullptr) continue;
    for (const auto& entry : it->second) {
      if (!entry.pred(as_base)) {
        return Status::ConstraintViolation("constraint '" + entry.name +
                                           "' of class " + type +
                                           " violated by a " + dynamic_type);
      }
    }
  }
  return Status::OK();
}

size_t ConstraintRegistry::CountFor(const TypeRegistry& registry,
                                    const std::string& dynamic_type) const {
  std::vector<std::string> lineage;
  CollectBases(registry, dynamic_type, &lineage);
  size_t count = 0;
  for (const auto& type : lineage) {
    auto it = by_type_.find(type);
    if (it != by_type_.end()) count += it->second.size();
  }
  return count;
}

}  // namespace ode
