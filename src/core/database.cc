#include "core/database.h"

#include <chrono>
#include <cstring>
#include <random>
#include <thread>
#include <vector>

#include "core/transaction.h"
#include "util/logging.h"

namespace ode {

namespace {

/// Jittered exponential backoff before retrying a deadlock/timeout victim:
/// uniformly random in [base/2, base] where base doubles per attempt,
/// starting at 1 ms and capped at 32 ms. Jitter desynchronizes rivals that
/// deadlocked against each other so the retry does not re-create the cycle.
void BackoffBeforeRetry(int attempt) {
  static thread_local std::mt19937 rng{std::random_device{}()};
  const int shift = attempt < 5 ? attempt : 5;
  const int64_t base_us = 1000ll << shift;
  std::uniform_int_distribution<int64_t> dist(base_us / 2, base_us);
  std::this_thread::sleep_for(std::chrono::microseconds(dist(rng)));
}

/// Cascade depth of the firing currently executing on this thread (0 when
/// no trigger action is running here). Thread-local because the async
/// executor runs actions on its own threads concurrently with user commits.
thread_local int t_trigger_depth = 0;

/// Scopes t_trigger_depth to a firing's execution.
struct TriggerDepthScope {
  explicit TriggerDepthScope(int depth) : saved(t_trigger_depth) {
    t_trigger_depth = depth;
  }
  ~TriggerDepthScope() { t_trigger_depth = saved; }
  int saved;
};

}  // namespace

Database::Database(const DatabaseOptions& options,
                   std::unique_ptr<StorageEngine> engine)
    : options_(options), engine_(std::move(engine)) {
  store_ = std::make_unique<ObjectStore>(engine_.get());
  indexes_ = std::make_unique<IndexManager>(engine_.get(), &catalog_,
                                            [this] { return SaveCatalog(); });
  // Resolve (and thereby pre-register, so `.stats` shows them at zero) the
  // core and query instruments.
  MetricsRegistry& m = engine_->metrics();
  core_metrics_.commit_us = m.GetHistogram("txn.commit_us");
  core_metrics_.constraint_checks = m.GetCounter("txn.constraint_checks");
  core_metrics_.constraint_violations =
      m.GetCounter("txn.constraint_violations");
  core_metrics_.trigger_firings = m.GetCounter("txn.trigger_firings");
  // Same instrument the async executor reports into, so `trigger.failures`
  // covers both execution modes.
  core_metrics_.trigger_failures = m.GetCounter("trigger.failures");
  core_metrics_.cache_evictions = m.GetCounter("txn.cache_evictions");
  core_metrics_.deadlock_retries = m.GetCounter("txn.deadlock_retries");
  core_metrics_.scans = m.GetCounter("query.scans");
  core_metrics_.index_scans = m.GetCounter("query.index_scans");
  core_metrics_.oid_list_scans = m.GetCounter("query.oid_list_scans");
  core_metrics_.rows_scanned = m.GetCounter("query.rows_scanned");
  core_metrics_.rows_returned = m.GetCounter("query.rows_returned");
  core_metrics_.parallel_scans = m.GetCounter("query.parallel.scans");
  core_metrics_.parallel_morsels = m.GetCounter("query.parallel.morsels");
  core_metrics_.parallel_fallbacks = m.GetCounter("query.parallel.fallbacks");
  core_metrics_.join_nested_loop = m.GetCounter("query.join.nested_loop");
  core_metrics_.join_index = m.GetCounter("query.join.index");
  core_metrics_.join_hash = m.GetCounter("query.join.hash");
  core_metrics_.join_pairs = m.GetCounter("query.join.pairs");
  core_metrics_.snapshot_reads = m.GetCounter("concur.snapshot.reads");
  core_metrics_.lock_escalations = m.GetCounter("concur.lock.escalations");
  core_metrics_.gc_objects_reclaimed = m.GetCounter("mvcc.gc.objects_reclaimed");
  core_metrics_.gc_versions_reclaimed =
      m.GetCounter("mvcc.gc.versions_reclaimed");
  core_metrics_.gc_index_entries_reclaimed =
      m.GetCounter("mvcc.gc.index_entries_reclaimed");
  core_metrics_.gc_pages_reclaimed = m.GetCounter("mvcc.gc.pages_reclaimed");

  if (options_.engine.query_threads > 0) {
    query_pool_ =
        std::make_unique<QueryPool>(options_.engine.query_threads, &m);
  }

  if (options_.trigger_executor_threads > 0) {
    concur::TriggerExecutor::Options exec_options;
    exec_options.threads = options_.trigger_executor_threads;
    exec_options.queue_capacity = options_.trigger_queue_capacity;
    exec_options.max_retries = options_.trigger_max_retries;
    trigger_exec_ =
        std::make_unique<concur::TriggerExecutor>(exec_options, &m);
  }
}

Database::~Database() {
  if (!closed_) {
    Status s = Close();
    if (!s.ok()) {
      ODE_LOG(kError) << "close failed: " << s.ToString();
    }
  }
}

Status Database::Open(const std::string& path, const DatabaseOptions& options,
                      std::unique_ptr<Database>* out) {
  std::unique_ptr<StorageEngine> engine;
  ODE_RETURN_IF_ERROR(StorageEngine::Open(path, options.engine, &engine));
  std::unique_ptr<Database> db(new Database(options, std::move(engine)));
  ODE_RETURN_IF_ERROR(db->ReloadCatalog());
  db->StartGcThread();
  *out = std::move(db);
  return Status::OK();
}

Status Database::Close() {
  if (closed_) return Status::OK();
  // Park the daemons first: their threads run transactions against this
  // database and must be gone before the engine goes away.
  StopGcThread();
  query_pool_.reset();
  if (trigger_exec_ != nullptr) {
    trigger_exec_->Shutdown();
  }
  {
    MutexLock lock(pending_mu_);
    if (!pending_firings_.empty()) {
      ODE_LOG(kWarn) << "closing with " << pending_firings_.size()
                     << " unexecuted trigger firing(s) (RunPendingTriggers "
                        "was not called)";
    }
  }
  // Abort the calling thread's transaction at this layer (so the catalog is
  // reloaded etc.); transactions leaked by other threads are rolled back by
  // the engine's Close below.
  Transaction* mine = sessions_.Current();
  if (mine != nullptr) {
    Status s = mine->Abort();
    if (!s.ok()) {
      ODE_LOG(kError) << "aborting open transaction on close: "
                      << s.ToString();
    }
  }
  closed_ = true;
  return engine_->Close();
}

// --- Transactions -------------------------------------------------------------

Result<std::unique_ptr<Transaction>> Database::Begin() {
  if (closed_) return Status::InvalidArgument("database is closed");
  if (sessions_.Current() != nullptr) {
    return Status::Busy("a transaction is already active on this thread");
  }
  std::unique_ptr<Transaction> txn(new Transaction(this));
  ODE_RETURN_IF_ERROR(txn->Start());
  return txn;
}

Result<std::unique_ptr<Transaction>> Database::BeginSnapshot() {
  if (closed_) return Status::InvalidArgument("database is closed");
  if (sessions_.Current() != nullptr) {
    return Status::Busy("a transaction is already active on this thread");
  }
  std::unique_ptr<Transaction> txn(new Transaction(this));
  ODE_RETURN_IF_ERROR(txn->StartSnapshot());
  return txn;
}

Result<std::unique_ptr<Transaction>> Database::BeginSnapshotAt(uint64_t seq) {
  if (closed_) return Status::InvalidArgument("database is closed");
  if (sessions_.Current() != nullptr) {
    return Status::Busy("a transaction is already active on this thread");
  }
  std::unique_ptr<Transaction> txn(new Transaction(this));
  ODE_RETURN_IF_ERROR(txn->StartSnapshotAt(seq));
  return txn;
}

Status Database::DetachSession(Transaction* txn) {
  if (txn == nullptr || !txn->open()) {
    return Status::InvalidArgument("DetachSession: transaction is not open");
  }
  if (sessions_.Current() != txn) {
    return Status::InvalidArgument(
        "DetachSession: not the calling thread's transaction");
  }
  ODE_RETURN_IF_ERROR(engine_->DetachTxn());
  sessions_.Unbind(txn);
  return Status::OK();
}

Status Database::AttachSession(Transaction* txn) {
  if (txn == nullptr || !txn->open()) {
    return Status::InvalidArgument("AttachSession: transaction is not open");
  }
  if (sessions_.Current() != nullptr) {
    return Status::Busy(
        "AttachSession: a transaction is already active on this thread");
  }
  ODE_RETURN_IF_ERROR(engine_->AttachTxn(txn->id()));
  if (!sessions_.Bind(txn)) {
    // Can't happen (the engine attach would have failed first), but keep the
    // two layers consistent if it ever does.
    Status detached = engine_->DetachTxn();
    IgnoreStatus(detached, "attach_session_rollback");
    return Status::Busy("AttachSession: session bind raced");
  }
  return Status::OK();
}

Status Database::RunReadTransaction(
    const std::function<Status(Transaction&)>& body) {
  for (int attempt = 0;; attempt++) {
    Status s;
    {
      Result<std::unique_ptr<Transaction>> begun = BeginSnapshot();
      if (!begun.ok()) {
        s = begun.status();
        if (s.IsBusy() && sessions_.Current() != nullptr) return s;
      } else {
        std::unique_ptr<Transaction> txn = std::move(begun.value());
        s = body(*txn);
        if (s.ok()) {
          s = txn->Commit();
        } else {
          Status abort_status = txn->Abort();
          if (!abort_status.ok()) {
            ODE_LOG(kError) << "abort failed: " << abort_status.ToString();
          }
        }
      }
    }
    // Snapshot bodies never deadlock (no locks) but can race version GC
    // freeing a chain entry mid-walk; the store reports that as Busy.
    if (!s.IsBusy()) return s;
    if (attempt >= options_.max_txn_retries) return s;
    core_metrics_.deadlock_retries->Add();
    BackoffBeforeRetry(attempt);
  }
}

Status Database::RunTransaction(
    const std::function<Status(Transaction&)>& body) {
  for (int attempt = 0;; attempt++) {
    Status s;
    {
      Result<std::unique_ptr<Transaction>> begun = Begin();
      if (!begun.ok()) {
        s = begun.status();
        // This thread already has a transaction (nested RunTransaction):
        // retrying can never succeed, so surface the Busy immediately.
        if (s.IsBusy() && sessions_.Current() != nullptr) return s;
      } else {
        std::unique_ptr<Transaction> txn = std::move(begun.value());
        s = body(*txn);
        if (s.ok()) {
          s = txn->Commit();
        } else {
          Status abort_status = txn->Abort();
          if (!abort_status.ok()) {
            ODE_LOG(kError) << "abort failed: " << abort_status.ToString();
          }
        }
      }
    }
    if (!s.IsDeadlock() && !s.IsBusy()) return s;
    if (attempt >= options_.max_txn_retries) return s;
    core_metrics_.deadlock_retries->Add();
    BackoffBeforeRetry(attempt);
  }
}

Status Database::InTransaction(
    const std::function<Status(Transaction&)>& fn) {
  Transaction* mine = sessions_.Current();
  if (mine != nullptr) return fn(*mine);
  return RunTransaction(fn);
}

// --- Catalog helpers ------------------------------------------------------------

Result<ClusterId> Database::ClusterIdForName(
    const std::string& type_name) const {
  const CatalogData::ClusterEntry* entry =
      catalog_.FindClusterByType(type_name);
  if (entry == nullptr) {
    return Status::NotFound("no cluster for type " + type_name +
                            " (create it first, paper §2.5)");
  }
  return entry->id;
}

Status Database::SaveCatalog() { return Catalog::Save(engine_.get(), catalog_); }

Status Database::ReloadCatalog() {
  return Catalog::Load(engine_.get(), &catalog_);
}

Result<uint32_t> Database::EnsureTypeCode(const std::string& type_name) {
  if (const CatalogData::TypeEntry* entry = catalog_.FindType(type_name)) {
    return entry->code;
  }
  CatalogData::TypeEntry entry;
  entry.name = type_name;
  entry.code = catalog_.next_type_code++;
  catalog_.types.push_back(entry);
  ODE_RETURN_IF_ERROR(SaveCatalog());
  return entry.code;
}

Result<std::string> Database::TypeNameByCode(uint32_t code) const {
  const CatalogData::TypeEntry* entry = catalog_.FindTypeByCode(code);
  if (entry == nullptr) {
    return Status::Corruption("unknown type code " + std::to_string(code));
  }
  return entry->name;
}

Result<PageId> Database::TableRootOf(ClusterId cluster) const {
  const CatalogData::ClusterEntry* entry = catalog_.FindCluster(cluster);
  if (entry == nullptr) {
    return Status::NotFound("unknown cluster " + std::to_string(cluster));
  }
  return entry->table_root;
}

Result<uint64_t> Database::NextTriggerId() {
  ODE_ASSIGN_OR_RETURN(
      uint64_t id,
      engine_->ReadSuperU64(SuperblockLayout::kNextTriggerIdOffset));
  ODE_RETURN_IF_ERROR(
      engine_->WriteSuperU64(SuperblockLayout::kNextTriggerIdOffset, id + 1));
  return id;
}

// --- Indexes -----------------------------------------------------------------------

Status Database::DropIndex(const std::string& name) {
  return InTransaction(
      [&](Transaction& txn) { return txn.DropIndex(name); });
}

Status Database::CollectVersionGarbage(GcTotals* totals) {
  if (sessions_.Current() != nullptr) {
    return Status::Busy("cannot collect version garbage inside a transaction");
  }
  // Snapshot the cluster and index lists under S(schema) — every transaction
  // holds it for life, so a DDL writer's catalog mutation (under X(schema))
  // cannot race this read even when the GC daemon calls in from its own
  // thread. DDL that lands after the snapshot just turns the affected sweep
  // into a NotFound no-op.
  std::vector<ClusterId> clusters;
  std::vector<std::string> index_names;
  ODE_RETURN_IF_ERROR(RunTransaction([&](Transaction&) -> Status {
    clusters.clear();
    index_names.clear();
    for (const CatalogData::ClusterEntry& entry : catalog_.clusters) {
      clusters.push_back(entry.id);
    }
    for (const CatalogData::IndexEntry& entry : catalog_.indexes) {
      index_names.push_back(entry.name);
    }
    return Status::OK();
  }));
  GcTotals sum;
  for (ClusterId cluster : clusters) {
    ObjectStore::GcStats stats;
    bool swept = false;
    Status s = RunTransaction([&](Transaction& txn) -> Status {
      stats = ObjectStore::GcStats();  // Reset: RunTransaction may retry us.
      swept = false;
      // X(cluster) keeps writers out of the chains being unlinked; snapshot
      // readers take no locks and instead retry the Busy they see when a
      // walk lands on a freed entry.
      ODE_RETURN_IF_ERROR(
          txn.LockCluster(cluster, concur::LockMode::kExclusive));
      const CatalogData::ClusterEntry* entry = catalog_.FindCluster(cluster);
      if (entry == nullptr) return Status::OK();  // Dropped since the snapshot.
      const uint64_t watermark = engine_->SnapshotWatermark();
      ODE_RETURN_IF_ERROR(
          store_->CollectGarbage(entry->table_root, watermark, &stats));
      swept = true;
      return Status::OK();
    });
    if (!s.ok()) return s;
    sum.objects_reclaimed += stats.objects_reclaimed;
    sum.versions_reclaimed += stats.versions_reclaimed;
    sum.pages_reclaimed += stats.pages_reclaimed;
    if (swept) sum.clusters++;
  }
  // Index sweep: X(index) keeps writers and lock-based probes out while dead
  // entry versions are unlinked. Snapshot scans take no locks, which stays
  // safe because the sweep only removes versions behind the min-active-
  // snapshot watermark — no live snapshot can see them.
  for (const std::string& name : index_names) {
    uint64_t reclaimed = 0;
    bool swept = false;
    Status s = RunTransaction([&](Transaction& txn) -> Status {
      reclaimed = 0;
      swept = false;
      Status lock = txn.LockIndexExclusive(name);
      if (lock.IsNotFound()) return Status::OK();  // Dropped since snapshot.
      ODE_RETURN_IF_ERROR(lock);
      const uint64_t watermark = engine_->SnapshotWatermark();
      ODE_RETURN_IF_ERROR(indexes_->SweepIndex(name, watermark, &reclaimed));
      swept = true;
      return Status::OK();
    });
    if (!s.ok()) return s;
    sum.index_entries_reclaimed += reclaimed;
    if (swept) sum.indexes++;
  }
  core_metrics_.gc_objects_reclaimed->Add(sum.objects_reclaimed);
  core_metrics_.gc_versions_reclaimed->Add(sum.versions_reclaimed);
  core_metrics_.gc_index_entries_reclaimed->Add(sum.index_entries_reclaimed);
  core_metrics_.gc_pages_reclaimed->Add(sum.pages_reclaimed);
  if (totals != nullptr) *totals = sum;
  return Status::OK();
}

void Database::StartGcThread() {
  if (options_.gc_interval_ms <= 0) return;
  gc_thread_ = std::thread([this] { GcThreadMain(); });
}

void Database::StopGcThread() {
  if (!gc_thread_.joinable()) return;
  {
    MutexLock lock(gc_mu_);
    gc_stop_ = true;
  }
  gc_cv_.NotifyAll();
  gc_thread_.join();
}

void Database::GcThreadMain() {
  const auto interval = std::chrono::milliseconds(options_.gc_interval_ms);
  for (;;) {
    {
      MutexLock lock(gc_mu_);
      const auto deadline = std::chrono::steady_clock::now() + interval;
      // WaitUntil returning true is a wakeup before the deadline — either
      // Stop (checked by the loop condition) or spurious (wait again).
      while (!gc_stop_ && gc_cv_.WaitUntil(gc_mu_, deadline)) {
      }
      if (gc_stop_) return;
    }
    // Best effort, off the commit path: a pass that loses a lock race or
    // collides with a structure op just skips this tick.
    Status s = CollectVersionGarbage(nullptr);
    if (!s.ok() && !s.IsBusy() && !s.IsDeadlock()) {
      ODE_LOG(kWarn) << "background version GC failed: " << s.ToString();
    }
  }
}

Status Database::BackupTo(const std::string& path) {
  if (sessions_.Current() != nullptr) {
    return Status::Busy("cannot back up inside a transaction");
  }
  // After a checkpoint the WAL is empty and the page file holds every
  // committed byte.
  ODE_RETURN_IF_ERROR(engine_->Checkpoint());
  ODE_ASSIGN_OR_RETURN(
      uint32_t page_count,
      engine_->ReadSuperU32(SuperblockLayout::kPageCountOffset));
  std::unique_ptr<File> src;
  ODE_RETURN_IF_ERROR(File::OpenReadOnly(engine_->path(), &src));
  // Copy via a temp file + rename so a crash never leaves a torn backup.
  const std::string tmp = path + ".tmp";
  ODE_RETURN_IF_ERROR(env::RemoveFile(tmp));
  std::unique_ptr<File> dst;
  ODE_RETURN_IF_ERROR(File::Open(tmp, &dst));
  std::vector<char> buf(kPageSize);
  for (PageId p = 0; p < page_count; p++) {
    size_t n = 0;
    ODE_RETURN_IF_ERROR(src->ReadAtMost(static_cast<uint64_t>(p) * kPageSize,
                                        kPageSize, buf.data(), &n));
    if (n < kPageSize) {
      memset(buf.data() + n, 0, kPageSize - n);  // never-flushed tail page
    }
    ODE_RETURN_IF_ERROR(
        dst->Write(static_cast<uint64_t>(p) * kPageSize,
                   Slice(buf.data(), kPageSize)));
  }
  ODE_RETURN_IF_ERROR(dst->Sync());
  ODE_RETURN_IF_ERROR(env::RemoveFile(path + ".wal"));
  return env::RenameFile(tmp, path);
}

// --- Triggers -----------------------------------------------------------------------

Status Database::RunOneFiring(const Firing& firing) {
  // The action transaction sees this thread's depth = the firing's depth, so
  // firings it fires in turn carry depth + 1 (cascade accounting that works
  // on both the committing thread and the async workers).
  TriggerDepthScope scope(firing.depth);
  Status s = RunTransaction([&](Transaction& txn) {
    return firing.def->action(txn, firing.oid, firing.params);
  });
  if (!s.ok() && !s.IsDeadlock() && !s.IsBusy()) {
    ODE_LOG(kWarn) << "trigger action (id " << firing.trigger_id
                   << ") failed: " << s.ToString();
  }
  return s;
}

void Database::ExecuteFirings(std::vector<Firing> firings) {
  if (firings.empty()) return;
  const int depth = t_trigger_depth;
  if (depth >= options_.max_trigger_cascade_depth) {
    ODE_LOG(kWarn) << "trigger cascade depth limit ("
                   << options_.max_trigger_cascade_depth << ") reached; "
                   << firings.size() << " firing(s) dropped";
    return;
  }
  if (trigger_exec_ != nullptr) {
    // Weak coupling, asynchronously: enqueue each firing; executor workers
    // run it as an independent transaction (retrying Deadlock/Busy).
    for (Firing& firing : firings) {
      firing.depth = depth + 1;
      auto task = std::make_shared<Firing>(std::move(firing));
      bool accepted = trigger_exec_->Submit(
          [this, task]() { return RunOneFiring(*task); });
      if (!accepted) {
        core_metrics_.trigger_failures->Add();
        ODE_LOG(kWarn) << "trigger action (id " << task->trigger_id
                       << ") dropped: executor is shut down";
      }
    }
    return;
  }
  for (Firing& firing : firings) {
    firing.depth = depth + 1;
    // Weak coupling (§6): the firing ran as its own transaction and its
    // failure must not affect the already-committed triggering transaction
    // — but it must be *observable*. The async path counts failures in
    // TriggerExecutor::RunTask; this synchronous path used to drop them
    // with no metric at all.
    Status s = RunOneFiring(firing);
    if (!s.ok()) {
      core_metrics_.trigger_failures->Add();
      if (s.IsDeadlock() || s.IsBusy()) {
        // RunOneFiring logged non-retryable failures; exhausted-retry
        // Deadlock/Busy outcomes are logged here.
        ODE_LOG(kWarn) << "trigger action (id " << firing.trigger_id
                       << ") failed: " << s.ToString();
      }
    }
  }
}

Status Database::RunPendingTriggers() {
  int rounds = 0;
  while (true) {
    std::vector<Firing> batch;
    {
      MutexLock lock(pending_mu_);
      if (pending_firings_.empty()) break;
      if (++rounds > options_.max_trigger_cascade_depth) {
        ODE_LOG(kWarn) << "trigger cascade depth limit reached; "
                       << pending_firings_.size() << " firing(s) dropped";
        pending_firings_.clear();
        break;
      }
      batch.swap(pending_firings_);
    }
    ExecuteFirings(std::move(batch));
    DrainTriggers();  // cascades re-enter pending_ only in deferred mode
  }
  return Status::OK();
}

void Database::DrainTriggers() {
  if (trigger_exec_ != nullptr) trigger_exec_->Drain();
}

}  // namespace ode
