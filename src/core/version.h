#ifndef ODE_CORE_VERSION_H_
#define ODE_CORE_VERSION_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "core/transaction.h"

namespace ode {

/// Linear versioning helpers (paper §4). The primitive operations live on
/// Transaction (NewVersion / DeleteVersion / CurrentVnum); these free
/// functions provide the paper's navigation vocabulary over references:
///
///   generic reference  — Ref with vnum() == kGenericVersion; always the
///                        current version;
///   specific reference — Ref pinned to one version number.

/// Existing version numbers of the object, ascending.
Status ListVersions(Transaction& txn, const RefBase& ref,
                    std::vector<uint32_t>* vnums);

/// Specific reference to version `vnum` (validated to exist).
template <typename T>
Result<Ref<T>> VersionRef(Transaction& txn, const Ref<T>& ref, uint32_t vnum) {
  const std::vector<uint32_t>* vnums = nullptr;
  ODE_RETURN_IF_ERROR(txn.CachedVersions(ref, &vnums));
  if (std::binary_search(vnums->begin(), vnums->end(), vnum)) {
    return Ref<T>(ref.db(), ref.oid(), vnum);
  }
  return Status::NotFound("version " + std::to_string(vnum));
}

/// Generic reference (the current version) — `vlatest`.
template <typename T>
Ref<T> VLatest(const Ref<T>& ref) {
  return Ref<T>(ref.db(), ref.oid(), kGenericVersion);
}

/// Specific reference to the oldest existing version — `vfirst`.
template <typename T>
Result<Ref<T>> VFirst(Transaction& txn, const Ref<T>& ref) {
  const std::vector<uint32_t>* vnums = nullptr;
  ODE_RETURN_IF_ERROR(txn.CachedVersions(ref, &vnums));
  return Ref<T>(ref.db(), ref.oid(), vnums->front());
}

/// The version preceding `ref`'s (resolving a generic ref to the current
/// version first) — `vprev`. NotFound at the oldest version.
///
/// O(log n) per hop against the transaction's sorted version cache (one
/// chain read per object per transaction), so walking a whole n-version
/// history is O(n log n), not the O(n²) of rescanning the chain every hop.
template <typename T>
Result<Ref<T>> VPrev(Transaction& txn, const Ref<T>& ref) {
  uint32_t at = ref.vnum();
  if (at == kGenericVersion) {
    ODE_ASSIGN_OR_RETURN(at, txn.CurrentVnum(ref));
  }
  ODE_ASSIGN_OR_RETURN(const uint32_t prev, txn.PrevVersionOf(ref, at));
  return Ref<T>(ref.db(), ref.oid(), prev);
}

/// The version following `ref`'s — `vnext`. NotFound at the current version.
template <typename T>
Result<Ref<T>> VNext(Transaction& txn, const Ref<T>& ref) {
  if (!ref.is_specific()) return Status::NotFound("no next version");
  ODE_ASSIGN_OR_RETURN(const uint32_t next,
                       txn.NextVersionOf(ref, ref.vnum()));
  return Ref<T>(ref.db(), ref.oid(), next);
}

/// The version number a reference denotes (`vnum`): the pinned version for
/// specific refs, the current version for generic refs.
Result<uint32_t> VNum(Transaction& txn, const RefBase& ref);

/// The version-derivation tree (paper footnote 15 / reference [4]):
/// (vnum, parent_vnum) pairs, ascending by vnum; parent
/// ObjectTable::kNoParentVersion marks the root. Linear histories produce a
/// path; RevertToVersion creates branches.
Status ListVersionTree(Transaction& txn, const RefBase& ref,
                       std::vector<std::pair<uint32_t, uint32_t>>* edges);

/// The version `ref`'s content derives from; NotFound at a tree root.
template <typename T>
Result<Ref<T>> VParent(Transaction& txn, const Ref<T>& ref) {
  uint32_t at = ref.vnum();
  if (at == kGenericVersion) {
    ODE_ASSIGN_OR_RETURN(at, txn.CurrentVnum(ref));
  }
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  ODE_RETURN_IF_ERROR(ListVersionTree(txn, ref, &edges));
  for (const auto& [vnum, parent] : edges) {
    if (vnum == at) {
      if (parent == ObjectTable::kNoParentVersion) {
        return Status::NotFound("version " + std::to_string(at) +
                                " is a derivation root");
      }
      return Ref<T>(ref.db(), ref.oid(), parent);
    }
  }
  return Status::NotFound("version " + std::to_string(at));
}

}  // namespace ode

#endif  // ODE_CORE_VERSION_H_
