#ifndef ODE_CORE_REF_H_
#define ODE_CORE_REF_H_

#include <cstdint>

#include "objstore/object_id.h"
#include "serial/archive.h"

namespace ode {

class Database;
class Transaction;

/// Untyped persistent reference: the paper's "pointer to a persistent
/// object" (§2). Carries the object id, an optional specific version number
/// (§4: generic vs. specific references), and the owning database so that
/// dereferencing can route through the active transaction.
///
/// Refs serialize as (cluster, local, vnum); the database binding is
/// re-established when a containing object is loaded (ReadArchive supplies
/// it).
class RefBase {
 public:
  RefBase() = default;
  RefBase(Database* db, Oid oid, uint32_t vnum = kGenericVersion)
      : db_(db), oid_(oid), vnum_(vnum) {}

  bool null() const { return !oid_.valid(); }
  explicit operator bool() const { return !null(); }

  Oid oid() const { return oid_; }
  ClusterId cluster() const { return oid_.cluster; }
  LocalOid local() const { return oid_.local; }

  /// kGenericVersion for a generic reference, else the pinned version.
  uint32_t vnum() const { return vnum_; }
  bool is_specific() const { return vnum_ != kGenericVersion; }

  Database* db() const { return db_; }

  friend bool operator==(const RefBase& a, const RefBase& b) {
    return a.oid_ == b.oid_ && a.vnum_ == b.vnum_;
  }
  friend bool operator!=(const RefBase& a, const RefBase& b) {
    return !(a == b);
  }
  friend bool operator<(const RefBase& a, const RefBase& b) {
    if (a.oid_ != b.oid_) return a.oid_ < b.oid_;
    return a.vnum_ < b.vnum_;
  }

  template <typename AR>
  void OdeFields(AR& ar) {
    ar(oid_.cluster, oid_.local, vnum_);
    if constexpr (AR::kIsLoading) {
      db_ = ar.db();
    }
  }

 protected:
  Database* db_ = nullptr;
  Oid oid_{};
  uint32_t vnum_ = kGenericVersion;
};

/// Typed persistent reference — O++'s `persistent T*`.
///
/// `operator->` reads the object through the database's active transaction
/// (terminating the process on I/O failure, like dereferencing a bad pointer
/// would); use Transaction::Read / Transaction::Write for Status-checked
/// access and for mutation.
template <typename T>
class Ref : public RefBase {
 public:
  using value_type = T;

  Ref() = default;
  Ref(Database* db, Oid oid, uint32_t vnum = kGenericVersion)
      : RefBase(db, oid, vnum) {}
  explicit Ref(const RefBase& base) : RefBase(base) {}

  /// Read-only dereference via the active transaction (defined in ode.h).
  const T* operator->() const;
  const T& operator*() const { return *operator->(); }
};

struct RefBaseHash {
  size_t operator()(const RefBase& r) const {
    return OidHash()(r.oid()) * 1000003u + r.vnum();
  }
};

}  // namespace ode

#endif  // ODE_CORE_REF_H_
