#include "core/verify.h"

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "objstore/object_table.h"
#include "query/btree.h"
#include "query/index_key.h"
#include "storage/overflow.h"
#include "util/coding.h"

namespace ode {

namespace {

/// Tracks which structure claims each page; reports double-claims.
class PageClaims {
 public:
  explicit PageClaims(VerifyReport* report) : report_(report) {}

  void Claim(PageId page, const std::string& owner) {
    if (page == kInvalidPageId) {
      report_->problems.push_back(owner + " references an invalid page id");
      return;
    }
    auto [it, inserted] = owners_.emplace(page, owner);
    if (!inserted) {
      report_->problems.push_back("page " + std::to_string(page) +
                                  " claimed by both '" + it->second +
                                  "' and '" + owner + "'");
    }
  }

  bool Claimed(PageId page) const { return owners_.count(page) > 0; }
  size_t count() const { return owners_.size(); }

 private:
  VerifyReport* report_;
  std::unordered_map<PageId, std::string> owners_;
};

void Problem(VerifyReport* report, const std::string& text) {
  report->problems.push_back(text);
}

Status VerifyFreeList(StorageEngine& engine, uint32_t page_count,
                      PageClaims* claims, VerifyReport* report) {
  ODE_ASSIGN_OR_RETURN(uint32_t head,
                       engine.ReadSuperU32(SuperblockLayout::kFreeListOffset));
  std::unordered_set<PageId> seen;
  PageId page = head;
  while (page != kInvalidPageId) {
    if (page >= page_count) {
      Problem(report, "free list contains out-of-range page " +
                          std::to_string(page));
      break;
    }
    if (!seen.insert(page).second) {
      Problem(report, "free list cycle at page " + std::to_string(page));
      break;
    }
    claims->Claim(page, "free list");
    report->free_pages++;
    PageHandle handle;
    ODE_RETURN_IF_ERROR(engine.GetPageRead(page, &handle));
    page = DecodeFixed32(handle.data());
  }
  return Status::OK();
}

Status VerifyCatalogShape(const CatalogData& catalog, VerifyReport* report) {
  std::set<uint32_t> codes;
  std::set<std::string> type_names;
  for (const auto& type : catalog.types) {
    if (!codes.insert(type.code).second) {
      Problem(report, "duplicate type code " + std::to_string(type.code));
    }
    if (!type_names.insert(type.name).second) {
      Problem(report, "duplicate type name " + type.name);
    }
  }
  std::set<ClusterId> cluster_ids;
  std::set<PageId> roots;
  for (const auto& cluster : catalog.clusters) {
    if (!cluster_ids.insert(cluster.id).second) {
      Problem(report,
              "duplicate cluster id " + std::to_string(cluster.id));
    }
    if (!roots.insert(cluster.table_root).second) {
      Problem(report, "clusters share table root page " +
                          std::to_string(cluster.table_root));
    }
    if (catalog.FindType(cluster.type_name) == nullptr) {
      Problem(report, "cluster type '" + cluster.type_name +
                          "' has no type code in the catalog");
    }
  }
  std::set<std::string> index_names;
  for (const auto& index : catalog.indexes) {
    if (!index_names.insert(index.name).second) {
      Problem(report, "duplicate index name " + index.name);
    }
    if (cluster_ids.count(index.cluster) == 0) {
      Problem(report, "index " + index.name + " references unknown cluster " +
                          std::to_string(index.cluster));
    }
  }
  return Status::OK();
}

struct ClusterCensus {
  /// Live head object ids (for index/trigger cross-checks).
  std::unordered_set<LocalOid> heads;
};

bool CatalogHasCode(Database& db, uint32_t code) {
  return db.catalog().FindTypeByCode(code) != nullptr;
}

Status VerifyCluster(Database& db, const CatalogData::ClusterEntry& cluster,
                     PageClaims* claims, ClusterCensus* census,
                     VerifyReport* report) {
  StorageEngine& engine = db.engine();
  ObjectTable table(&engine, cluster.table_root);
  const std::string tag = "cluster " + cluster.type_name;

  // Structure pages.
  std::vector<PageId> root_pages, entry_pages;
  ODE_RETURN_IF_ERROR(table.ListStructurePages(&root_pages, &entry_pages));
  for (PageId p : root_pages) claims->Claim(p, tag + " table directory");
  for (PageId p : entry_pages) claims->Claim(p, tag + " entry page");

  ODE_ASSIGN_OR_RETURN(uint32_t num_entries, table.NumEntries());
  std::unordered_set<PageId> data_pages;
  std::unordered_set<LocalOid> version_entries;
  std::vector<LocalOid> tombstone_heads;

  // First pass: every allocated entry's record location, plus chains.
  for (LocalOid i = 0; i < num_entries; i++) {
    ObjectTable::Entry entry;
    ODE_RETURN_IF_ERROR(table.GetEntry(i, &entry));
    if (!entry.allocated()) continue;
    if (entry.is_version()) {
      version_entries.insert(i);
      report->versions++;
    } else if (entry.tombstone()) {
      // Deleted head awaiting version GC: no record location by design
      // (page is intentionally invalid), and index entries were removed at
      // delete time, so it stays out of the live-head census. Its version
      // chain is still walked below so retained pre-delete images are not
      // reported as orphans.
      tombstone_heads.push_back(i);
      report->tombstones++;
      if (!CatalogHasCode(db, entry.type_code)) {
        Problem(report, tag + " tombstone " + std::to_string(i) +
                            " has unknown type code " +
                            std::to_string(entry.type_code));
      }
      continue;
    } else {
      census->heads.insert(i);
      report->objects++;
    }
    if (entry.overflow()) {
      std::vector<PageId> chain;
      Status s = overflow::ListChainPages(&engine, entry.page, &chain);
      if (!s.ok()) {
        Problem(report, tag + " object " + std::to_string(i) +
                            ": broken overflow chain: " + s.ToString());
        continue;
      }
      for (PageId p : chain) {
        claims->Claim(p, tag + " overflow of object " + std::to_string(i));
      }
    } else {
      data_pages.insert(entry.page);
    }
    if (!CatalogHasCode(db, entry.type_code)) {
      Problem(report, tag + " object " + std::to_string(i) +
                          " has unknown type code " +
                          std::to_string(entry.type_code));
    }
  }
  for (PageId p : data_pages) claims->Claim(p, tag + " data page");
  ODE_ASSIGN_OR_RETURN(PageId current, table.GetCurrentDataPage());
  if (current != kInvalidPageId && data_pages.count(current) == 0) {
    claims->Claim(current, tag + " current data page");
  }

  // Second pass: version chains from each head (live and tombstoned).
  std::vector<LocalOid> chain_heads(census->heads.begin(), census->heads.end());
  chain_heads.insert(chain_heads.end(), tombstone_heads.begin(),
                     tombstone_heads.end());
  for (LocalOid head : chain_heads) {
    ObjectTable::Entry entry;
    ODE_RETURN_IF_ERROR(table.GetEntry(head, &entry));
    const bool head_tombstoned = entry.tombstone();
    uint32_t prev_vnum = entry.vnum + 1;  // sentinel: head vnum must be less
    LocalOid at = head;
    std::unordered_set<LocalOid> seen;
    while (true) {
      if (!seen.insert(at).second) {
        Problem(report, tag + " object " + std::to_string(head) +
                            ": version chain cycle at entry " +
                            std::to_string(at));
        break;
      }
      // Version numbers decrease down the chain. MVCC retained images are
      // the one sanctioned repeat: a pre-update copy keeps the vnum of the
      // entry that superseded it, so successive retained entries (and the
      // retained entry directly below its successor) may share a vnum.
      if (entry.vnum > prev_vnum ||
          (entry.vnum == prev_vnum && !entry.retained())) {
        Problem(report, tag + " object " + std::to_string(head) +
                            ": version numbers not non-increasing");
        break;
      }
      prev_vnum = entry.vnum;
      // The record itself must be readable. Tombstoned chains refuse store
      // Reads wholesale (only snapshots may see behind a tombstone), and
      // retained images are not addressable by (oid, vnum) — a store Read
      // resolves that vnum to the newest duplicate — so both are skipped
      // here; their pages were accounted for in the first pass.
      if (!head_tombstoned && !entry.retained()) {
        std::string bytes;
        uint32_t type_code = 0, resolved = 0;
        Status s = db.store().Read(cluster.table_root, head, entry.vnum,
                                   &bytes, &type_code, &resolved);
        if (!s.ok()) {
          Problem(report, tag + " object " + std::to_string(head) + " v" +
                              std::to_string(entry.vnum) +
                              ": unreadable record: " + s.ToString());
        }
      }
      if (entry.prev_version == kInvalidLocalOid) break;
      at = entry.prev_version;
      ODE_RETURN_IF_ERROR(table.GetEntry(at, &entry));
      if (!entry.allocated() || !entry.is_version()) {
        Problem(report, tag + " object " + std::to_string(head) +
                            ": chain links to a non-version entry " +
                            std::to_string(at));
        break;
      }
      version_entries.erase(at);
    }
  }
  for (LocalOid orphan : version_entries) {
    Problem(report, tag + ": version entry " + std::to_string(orphan) +
                        " not reachable from any head");
  }

  // Free-entry list.
  ODE_ASSIGN_OR_RETURN(LocalOid free_head, table.GetFreeEntryHead());
  std::unordered_set<LocalOid> seen_free;
  LocalOid at = free_head;
  while (at != kInvalidLocalOid) {
    if (at >= num_entries) {
      Problem(report, tag + ": free-entry list index out of range");
      break;
    }
    if (!seen_free.insert(at).second) {
      Problem(report, tag + ": free-entry list cycle");
      break;
    }
    ObjectTable::Entry entry;
    ODE_RETURN_IF_ERROR(table.GetEntry(at, &entry));
    if (entry.allocated()) {
      Problem(report, tag + ": allocated entry " + std::to_string(at) +
                          " on the free-entry list");
      break;
    }
    at = entry.page;  // next-free link
  }
  return Status::OK();
}

Status VerifyIndex(Database& db, const CatalogData::IndexEntry& index,
                   const std::unordered_map<ClusterId, ClusterCensus>& census,
                   PageClaims* claims, VerifyReport* report) {
  StorageEngine& engine = db.engine();
  // Resolve the B-tree through the root-pointer page (the catalog only
  // records the immutable indirection; the live root sits behind it).
  claims->Claim(index.root_page, "index " + index.name + " root pointer");
  PageId btree_root = kInvalidPageId;
  {
    PageHandle handle;
    Status s = engine.GetPageRead(index.root_page, &handle);
    if (!s.ok()) {
      Problem(report, "index " + index.name +
                          ": unreadable root pointer: " + s.ToString());
      return Status::OK();
    }
    if (handle.data()[0] != static_cast<char>(PageType::kIndexRoot)) {
      Problem(report,
              "index " + index.name + ": root-pointer page has wrong type");
      return Status::OK();
    }
    btree_root = DecodeFixed32(handle.data() + 4);  // IndexManager layout
  }
  BTree tree(&engine, btree_root);
  std::vector<PageId> pages;
  Status s = tree.ListPages(&pages);
  if (!s.ok()) {
    Problem(report, "index " + index.name + ": " + s.ToString());
    return Status::OK();
  }
  for (PageId p : pages) claims->Claim(p, "index " + index.name);

  // Versioned-entry invariants, walked in composite order (groups are
  // contiguous, newest version first within a group):
  //  * composite keys strictly increasing, hence commit seqs strictly
  //    decreasing within a group;
  //  * no consecutive tombstones, and the oldest entry of a group is an add
  //    (every tombstone shadows an older add);
  //  * the value's oid matches the composite's oid suffix;
  //  * a group whose newest entry is an add references a live head.
  // index_entries counts VISIBLE entries (newest-per-group adds), matching
  // what an unbounded-cut scan would return.
  auto cluster_census = census.find(index.cluster);
  BTree::Iterator it;
  ODE_RETURN_IF_ERROR(tree.SeekFirst(&it));
  std::string prev_key;
  std::string prev_group;
  uint64_t prev_seq = 0;
  bool prev_tombstone = false;
  bool first = true;
  auto close_group = [&]() {
    if (!first && prev_tombstone) {
      Problem(report, "index " + index.name +
                          ": tombstone with no older add in its group");
    }
  };
  while (it.Valid()) {
    const std::string key = it.key().ToString();
    if (!first && !(prev_key < key)) {
      Problem(report,
              "index " + index.name + ": keys not strictly increasing");
      break;
    }
    if (key.size() < 17) {  // >= 1 user-key byte + 8B oid + 8B seq
      Problem(report, "index " + index.name + ": malformed composite key");
      break;
    }
    const Slice composite(key);
    const std::string group = index_key::GroupPrefix(composite).ToString();
    const uint64_t seq = index_key::SeqOf(composite);
    const Oid oid = index_key::OidSuffix(composite);
    const uint64_t value = it.value();
    const bool tombstone = index_key::IsTombstoneValue(value);
    if ((value & ~index_key::kTombstoneValueBit) != oid.Pack()) {
      Problem(report, "index " + index.name +
                          ": value oid disagrees with composite oid");
    }
    if (oid.cluster != index.cluster) {
      Problem(report, "index " + index.name + ": entry for foreign cluster " +
                          std::to_string(oid.cluster));
    }
    if (first || group != prev_group) {
      close_group();
      // Newest entry of a new group: a visible add must point at a live head.
      if (!tombstone) {
        if (oid.cluster == index.cluster &&
            (cluster_census == census.end() ||
             cluster_census->second.heads.count(oid.local) == 0)) {
          Problem(report, "index " + index.name +
                              ": dangling entry for object " +
                              std::to_string(oid.local));
        }
        report->index_entries++;
      }
    } else {
      if (seq >= prev_seq) {
        Problem(report, "index " + index.name +
                            ": commit seqs not strictly decreasing in group");
      }
      if (tombstone && prev_tombstone) {
        Problem(report,
                "index " + index.name + ": consecutive tombstones in group");
      }
    }
    prev_key = key;
    prev_group = group;
    prev_seq = seq;
    prev_tombstone = tombstone;
    first = false;
    ODE_RETURN_IF_ERROR(it.Next());
  }
  close_group();
  return Status::OK();
}

}  // namespace

std::string VerifyReport::ToString() const {
  std::string out = "pages=" + std::to_string(pages) +
                    " free=" + std::to_string(free_pages) +
                    " clusters=" + std::to_string(clusters) +
                    " objects=" + std::to_string(objects) +
                    " versions=" + std::to_string(versions) +
                    " tombstones=" + std::to_string(tombstones) +
                    " indexes=" + std::to_string(indexes) +
                    " index_entries=" + std::to_string(index_entries) +
                    " activations=" + std::to_string(trigger_activations);
  if (problems.empty()) {
    out += "\nOK";
  } else {
    out += "\n" + std::to_string(problems.size()) + " problem(s):";
    for (const auto& p : problems) out += "\n  - " + p;
  }
  return out;
}

Status VerifyDatabase(Database& db, VerifyReport* report) {
  *report = VerifyReport();
  StorageEngine& engine = db.engine();
  const CatalogData& catalog = db.catalog();

  ODE_ASSIGN_OR_RETURN(
      uint32_t page_count,
      engine.ReadSuperU32(SuperblockLayout::kPageCountOffset));
  report->pages = page_count;

  PageClaims claims(report);
  claims.Claim(kSuperblockPageId, "superblock");

  ODE_RETURN_IF_ERROR(VerifyCatalogShape(catalog, report));

  // Catalog blob chain.
  ODE_ASSIGN_OR_RETURN(
      uint32_t catalog_root,
      engine.ReadSuperU32(SuperblockLayout::kCatalogRootOffset));
  if (catalog_root != kInvalidPageId) {
    std::vector<PageId> chain;
    Status s = overflow::ListChainPages(&engine, catalog_root, &chain);
    if (!s.ok()) {
      Problem(report, "catalog chain: " + s.ToString());
    } else {
      for (PageId p : chain) claims.Claim(p, "catalog");
    }
  }

  ODE_RETURN_IF_ERROR(VerifyFreeList(engine, page_count, &claims, report));

  std::unordered_map<ClusterId, ClusterCensus> census;
  for (const auto& cluster : catalog.clusters) {
    report->clusters++;
    ODE_RETURN_IF_ERROR(
        VerifyCluster(db, cluster, &claims, &census[cluster.id], report));
  }

  for (const auto& index : catalog.indexes) {
    report->indexes++;
    ODE_RETURN_IF_ERROR(VerifyIndex(db, index, census, &claims, report));
  }

  // Trigger activations reference live objects.
  for (const auto& activation : catalog.triggers) {
    report->trigger_activations++;
    auto it = census.find(activation.cluster);
    if (it == census.end() || it->second.heads.count(activation.local) == 0) {
      Problem(report,
              "trigger activation " + std::to_string(activation.trigger_id) +
                  " references missing object (" +
                  std::to_string(activation.cluster) + ":" +
                  std::to_string(activation.local) + ")");
    }
  }

  // Ownership completeness: every page below the high-water mark must be
  // claimed exactly once (double-claims were reported as they occurred).
  for (PageId p = 0; p < page_count; p++) {
    if (!claims.Claimed(p)) {
      Problem(report, "page " + std::to_string(p) +
                          " is not referenced by any structure (leaked)");
    }
  }
  return Status::OK();
}

}  // namespace ode
