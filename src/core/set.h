#ifndef ODE_CORE_SET_H_
#define ODE_CORE_SET_H_

#include <functional>
#include <unordered_set>
#include <vector>

#include "core/forall.h"
#include "core/transaction.h"

namespace ode {

/// Backing object for persistent sets (paper §2.6). Members are packed
/// object ids in insertion order (insertion order is what gives set
/// iteration its worklist/fixpoint semantics, §3.2). A set is itself a
/// persistent object, so sets nest and sets may be members of objects.
struct OSetData {
  std::vector<uint64_t> members;

  template <typename AR>
  void OdeFields(AR& ar) {
    ar(members);
    if constexpr (AR::kIsLoading) {
      // Deserialization replaced `members` wholesale; the mirror is stale.
      hash_valid_ = false;
      hash_.clear();
    }
  }

  /// O(1) expected via a lazily built hash mirror of `members` (the on-disk
  /// encoding stays the insertion-ordered vector; the mirror is volatile).
  /// The old linear scan made OSet::Insert/Erase O(n²) on bulk loads.
  bool Contains(uint64_t packed) const {
    if (!hash_valid_) RebuildHash();
    return hash_.count(packed) > 0;
  }

  /// Appends without a membership check (callers check Contains first).
  void Add(uint64_t packed) {
    members.push_back(packed);
    if (hash_valid_) hash_.insert(packed);
  }

  /// Removes one occurrence; returns whether anything was removed.
  bool Remove(uint64_t packed) {
    for (auto it = members.begin(); it != members.end(); ++it) {
      if (*it == packed) {
        members.erase(it);
        if (hash_valid_) hash_.erase(packed);
        return true;
      }
    }
    return false;
  }

  /// Wholesale replacement (union/intersection/difference rebuilds).
  void ReplaceMembers(std::vector<uint64_t> new_members) {
    members = std::move(new_members);
    hash_valid_ = false;
    hash_.clear();
  }

 private:
  void RebuildHash() const {
    hash_.clear();
    hash_.reserve(members.size());
    hash_.insert(members.begin(), members.end());
    hash_valid_ = true;
  }

  // Transient membership cache, rebuilt lazily from members_ after load;
  // deliberately excluded from OdeFields so the on-disk format is unchanged.
  mutable std::unordered_set<uint64_t> hash_;       // ode-analyzer: allow(archive-symmetry)
  mutable bool hash_valid_ = false;                 // ode-analyzer: allow(archive-symmetry)
};

/// Registers OSetData with the type registry (idempotent); called by
/// OSet<T> operations so linking the core library suffices.
void EnsureSetTypeRegistered();

/// Typed persistent set of references — O++'s `set T*` (§2.6).
///
/// All operations run inside a transaction. ForEach visits elements
/// inserted *during* the iteration exactly once (the facility §3.2 uses for
/// fixpoint queries); elements erased mid-iteration and not yet visited are
/// skipped.
template <typename T>
class OSet {
 public:
  OSet() = default;
  explicit OSet(Ref<OSetData> data) : data_(data) {}

  /// Creates an empty persistent set (auto-creating the system cluster for
  /// set objects on first use).
  static Result<OSet<T>> Create(Transaction& txn) {
    EnsureSetTypeRegistered();
    ODE_RETURN_IF_ERROR(txn.EnsureCluster<OSetData>());
    ODE_ASSIGN_OR_RETURN(Ref<OSetData> data, txn.New<OSetData>());
    return OSet<T>(data);
  }

  bool null() const { return data_.null(); }
  Ref<OSetData> handle() const { return data_; }

  /// Adds `elem`; no-op when already a member.
  Status Insert(Transaction& txn, const Ref<T>& elem) {
    ODE_ASSIGN_OR_RETURN(const OSetData* data, txn.Read(data_));
    if (data->Contains(elem.oid().Pack())) return Status::OK();
    ODE_ASSIGN_OR_RETURN(OSetData * mut, txn.Write(data_));
    mut->Add(elem.oid().Pack());
    return Status::OK();
  }

  /// Removes `elem`; no-op when absent.
  Status Erase(Transaction& txn, const Ref<T>& elem) {
    ODE_ASSIGN_OR_RETURN(const OSetData* data, txn.Read(data_));
    if (!data->Contains(elem.oid().Pack())) return Status::OK();
    ODE_ASSIGN_OR_RETURN(OSetData * mut, txn.Write(data_));
    mut->Remove(elem.oid().Pack());
    return Status::OK();
  }

  Result<bool> Contains(Transaction& txn, const Ref<T>& elem) const {
    ODE_ASSIGN_OR_RETURN(const OSetData* data, txn.Read(data_));
    return data->Contains(elem.oid().Pack());
  }

  Result<size_t> Size(Transaction& txn) const {
    ODE_ASSIGN_OR_RETURN(const OSetData* data, txn.Read(data_));
    return data->members.size();
  }

  /// Worklist iteration (§2.6/§3.2): members appended by `body` are visited
  /// in this same loop; each member is visited at most once. Erasures during
  /// iteration are also safe — the scan repeats until a full pass finds no
  /// unvisited member, so elements shifted by an erase are not skipped.
  Status ForEach(Transaction& txn,
                 const std::function<Status(Ref<T>)>& body) const {
    std::unordered_set<uint64_t> visited;
    bool progressed = true;
    while (progressed) {
      progressed = false;
      size_t i = 0;
      while (true) {
        ODE_ASSIGN_OR_RETURN(const OSetData* data, txn.Read(data_));
        if (i >= data->members.size()) break;
        const uint64_t packed = data->members[i];
        i++;
        if (!visited.insert(packed).second) continue;
        progressed = true;
        ODE_RETURN_IF_ERROR(body(Ref<T>(&txn.db(), Oid::Unpack(packed))));
      }
    }
    return Status::OK();
  }

  /// Members as typed refs, in insertion order.
  Result<std::vector<Ref<T>>> Elements(Transaction& txn) const {
    ODE_ASSIGN_OR_RETURN(const OSetData* data, txn.Read(data_));
    std::vector<Ref<T>> out;
    out.reserve(data->members.size());
    for (uint64_t packed : data->members) {
      out.emplace_back(&txn.db(), Oid::Unpack(packed));
    }
    return out;
  }

  /// this = this ∪ other.
  Status UnionWith(Transaction& txn, const OSet<T>& other) {
    ODE_ASSIGN_OR_RETURN(const OSetData* theirs, txn.Read(other.data_));
    const std::vector<uint64_t> incoming = theirs->members;
    ODE_ASSIGN_OR_RETURN(const OSetData* mine, txn.Read(data_));
    std::unordered_set<uint64_t> present(mine->members.begin(),
                                         mine->members.end());
    std::vector<uint64_t> to_add;
    for (uint64_t m : incoming) {
      if (present.insert(m).second) to_add.push_back(m);
    }
    if (to_add.empty()) return Status::OK();
    ODE_ASSIGN_OR_RETURN(OSetData * mut, txn.Write(data_));
    for (uint64_t m : to_add) mut->Add(m);
    return Status::OK();
  }

  /// this = this ∩ other.
  Status IntersectWith(Transaction& txn, const OSet<T>& other) {
    ODE_ASSIGN_OR_RETURN(const OSetData* theirs, txn.Read(other.data_));
    std::unordered_set<uint64_t> keep(theirs->members.begin(),
                                      theirs->members.end());
    ODE_ASSIGN_OR_RETURN(OSetData * mut, txn.Write(data_));
    std::vector<uint64_t> kept;
    for (uint64_t m : mut->members) {
      if (keep.count(m)) kept.push_back(m);
    }
    mut->ReplaceMembers(std::move(kept));
    return Status::OK();
  }

  /// this = this \ other.
  Status Subtract(Transaction& txn, const OSet<T>& other) {
    ODE_ASSIGN_OR_RETURN(const OSetData* theirs, txn.Read(other.data_));
    std::unordered_set<uint64_t> drop(theirs->members.begin(),
                                      theirs->members.end());
    ODE_ASSIGN_OR_RETURN(OSetData * mut, txn.Write(data_));
    std::vector<uint64_t> kept;
    for (uint64_t m : mut->members) {
      if (!drop.count(m)) kept.push_back(m);
    }
    mut->ReplaceMembers(std::move(kept));
    return Status::OK();
  }

  /// Deletes the set object itself (not its members).
  Status Destroy(Transaction& txn) { return txn.Delete(data_); }

  template <typename AR>
  void OdeFields(AR& ar) {
    ar(data_);
  }

 private:
  Ref<OSetData> data_;
};

/// Volatile (in-memory) set of references with the same iteration semantics
/// as OSet — O++ sets work identically on volatile and persistent data.
template <typename T>
class VSet {
 public:
  bool Insert(const Ref<T>& elem) {
    if (present_.count(elem.oid().Pack())) return false;
    present_.insert(elem.oid().Pack());
    order_.push_back(elem);
    return true;
  }

  bool Erase(const Ref<T>& elem) {
    if (present_.erase(elem.oid().Pack()) == 0) return false;
    for (auto it = order_.begin(); it != order_.end(); ++it) {
      if (it->oid() == elem.oid()) {
        order_.erase(it);
        break;
      }
    }
    return true;
  }

  bool Contains(const Ref<T>& elem) const {
    return present_.count(elem.oid().Pack()) > 0;
  }

  size_t size() const { return order_.size(); }
  bool empty() const { return order_.empty(); }
  const std::vector<Ref<T>>& elements() const { return order_; }

  /// Worklist iteration: visits elements `body` inserts; erase-safe (see
  /// OSet::ForEach).
  Status ForEach(const std::function<Status(Ref<T>)>& body) {
    std::unordered_set<uint64_t> visited;
    bool progressed = true;
    while (progressed) {
      progressed = false;
      size_t i = 0;
      while (i < order_.size()) {
        Ref<T> elem = order_[i];
        i++;
        if (!visited.insert(elem.oid().Pack()).second) continue;
        progressed = true;
        ODE_RETURN_IF_ERROR(body(elem));
      }
    }
    return Status::OK();
  }

  void UnionWith(const VSet<T>& other) {
    for (const auto& e : other.order_) Insert(e);
  }

  void IntersectWith(const VSet<T>& other) {
    std::vector<Ref<T>> kept;
    for (const auto& e : order_) {
      if (other.Contains(e)) kept.push_back(e);
    }
    Rebuild(std::move(kept));
  }

  void Subtract(const VSet<T>& other) {
    std::vector<Ref<T>> kept;
    for (const auto& e : order_) {
      if (!other.Contains(e)) kept.push_back(e);
    }
    Rebuild(std::move(kept));
  }

 private:
  void Rebuild(std::vector<Ref<T>> kept) {
    order_ = std::move(kept);
    present_.clear();
    for (const auto& e : order_) present_.insert(e.oid().Pack());
  }

  std::vector<Ref<T>> order_;
  std::unordered_set<uint64_t> present_;
};

}  // namespace ode

/// TypeTag for OSetData so TypeNameOf<OSetData>() works; the runtime
/// registration happens in EnsureSetTypeRegistered().
template <>
struct ode::TypeTag<ode::OSetData> {
  static constexpr const char* kName = "ode::OSetData";
};

#endif  // ODE_CORE_SET_H_
