#include "core/version.h"

namespace ode {

Status ListVersions(Transaction& txn, const RefBase& ref,
                    std::vector<uint32_t>* vnums) {
  Database& db = txn.db();
  ODE_ASSIGN_OR_RETURN(PageId root, db.TableRootOf(ref.oid().cluster));
  return db.store().ListVersions(root, ref.oid().local, vnums);
}

Status ListVersionTree(Transaction& txn, const RefBase& ref,
                       std::vector<std::pair<uint32_t, uint32_t>>* edges) {
  Database& db = txn.db();
  ODE_ASSIGN_OR_RETURN(PageId root, db.TableRootOf(ref.oid().cluster));
  return db.store().ListVersionTree(root, ref.oid().local, edges);
}

Result<uint32_t> VNum(Transaction& txn, const RefBase& ref) {
  if (ref.is_specific()) return ref.vnum();
  return txn.CurrentVnum(ref);
}

}  // namespace ode
