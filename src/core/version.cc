#include "core/version.h"

namespace ode {

Status ListVersions(Transaction& txn, const RefBase& ref,
                    std::vector<uint32_t>* vnums) {
  // Served from the transaction's per-object version cache: one chain read
  // per object per transaction, invalidated by version-mutating operations.
  const std::vector<uint32_t>* cached = nullptr;
  ODE_RETURN_IF_ERROR(txn.CachedVersions(ref, &cached));
  *vnums = *cached;
  return Status::OK();
}

Status ListVersionTree(Transaction& txn, const RefBase& ref,
                       std::vector<std::pair<uint32_t, uint32_t>>* edges) {
  Database& db = txn.db();
  ODE_ASSIGN_OR_RETURN(PageId root, db.TableRootOf(ref.oid().cluster));
  return db.store().ListVersionTree(root, ref.oid().local, edges);
}

Result<uint32_t> VNum(Transaction& txn, const RefBase& ref) {
  if (ref.is_specific()) return ref.vnum();
  return txn.CurrentVnum(ref);
}

}  // namespace ode
