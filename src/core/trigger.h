#ifndef ODE_CORE_TRIGGER_H_
#define ODE_CORE_TRIGGER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "objstore/object_id.h"
#include "schema/type_registry.h"
#include "util/status.h"

namespace ode {

class Transaction;

/// Trigger machinery (paper §6).
///
/// Trigger *definitions* are class members in O++: a named (condition,
/// action) pair, optionally `perpetual`. Definitions are code, registered at
/// startup (Database::DefineTrigger). Trigger *activations* attach a
/// definition to one object with arguments; they are database state and are
/// persisted in the catalog, so they survive program runs.
///
/// Semantics implemented exactly as §6 specifies:
///  * conditions are evaluated at end of transaction over the objects the
///    transaction wrote;
///  * a firing schedules the action as an independent transaction executed
///    after the triggering transaction commits (weak coupling) — if the
///    triggering transaction aborts, nothing fires;
///  * once-only activations are deactivated by firing; perpetual ones stay
///    active and fire again in any later transaction whose condition holds.
class TriggerRegistry {
 public:
  /// Type-erased definition. `obj` points to an object of the class the
  /// trigger was defined for (upcast applied by the caller).
  struct Definition {
    std::string type_name;
    std::string trigger_name;
    /// O++'s `perpetual` keyword on the definition: activations default to
    /// perpetual (re-fire on every qualifying transaction) instead of
    /// once-only.
    bool perpetual_default = false;
    std::function<bool(const void* obj, const std::vector<double>& params)>
        condition;
    std::function<Status(Transaction& txn, Oid oid,
                         const std::vector<double>& params)>
        action;
  };

  /// Registers a definition for (type, name). Overwrites silently (useful in
  /// tests).
  void Define(Definition def);

  /// Finds the definition visible on `dynamic_type` under `trigger_name`:
  /// the type's own definition or an inherited one (nearest base wins).
  const Definition* Resolve(const TypeRegistry& registry,
                            const std::string& dynamic_type,
                            const std::string& trigger_name) const;

 private:
  std::map<std::pair<std::string, std::string>, Definition> defs_;
};

}  // namespace ode

#endif  // ODE_CORE_TRIGGER_H_
