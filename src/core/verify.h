#ifndef ODE_CORE_VERIFY_H_
#define ODE_CORE_VERIFY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/database.h"

namespace ode {

/// Result of an integrity check. `problems` is empty for a healthy
/// database; counters summarize what was visited.
struct VerifyReport {
  uint64_t pages = 0;
  uint64_t free_pages = 0;
  uint64_t clusters = 0;
  uint64_t objects = 0;
  uint64_t versions = 0;    ///< Old (non-head) versions, incl. retained images.
  uint64_t tombstones = 0;  ///< Deleted heads awaiting version GC.
  uint64_t indexes = 0;
  uint64_t index_entries = 0;
  uint64_t trigger_activations = 0;
  std::vector<std::string> problems;

  bool ok() const { return problems.empty(); }
  std::string ToString() const;
};

/// Verifies the structural invariants documented in docs/STORAGE.md:
///
///  1. catalog sanity: unique type codes / cluster ids, every cluster's type
///     has a code, table roots distinct;
///  2. free-page list: acyclic, in-range, no page claimed elsewhere;
///  3. object tables: allocated live heads have readable records; version
///     chains have non-increasing version numbers (equal only for MVCC
///     retained images) and end cleanly; tombstoned heads carry no record
///     location; free-entry lists are acyclic and point at unallocated
///     entries;
///  4. B+trees: keys strictly increasing along the leaf chain; every entry's
///     oid refers to a live head object of the indexed cluster;
///  5. trigger activations reference live objects;
///  6. page ownership: every page below the high-water mark is claimed by
///     exactly one owner (superblock, catalog chain, table directory/entry
///     pages, record data pages, overflow chains, B+tree nodes, or the free
///     list) — double-claims and leaked (unreferenced) pages are reported.
///
/// Read-only; requires no open transaction. Structural damage is reported
/// in `report->problems` (the function itself only fails on I/O errors).
Status VerifyDatabase(Database& db, VerifyReport* report);

}  // namespace ode

#endif  // ODE_CORE_VERIFY_H_
