#ifndef ODE_CORE_FORALL_H_
#define ODE_CORE_FORALL_H_

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/transaction.h"

namespace ode {

/// The paper's set/cluster iteration facility (§3):
///
///     forall (p in person) suchthat (p->age > 30) by (p->name) { ... }
///
/// becomes
///
///     ForAll<Person>(txn)
///         .SuchThat([](const Person& p) { return p.age > 30; })
///         .By<std::string>([](const Person& p) { return p.name; })
///         .Do([&](Ref<Person> p) { ...; return Status::OK(); });
///
/// Features mapped from the paper:
///  * `suchthat` — predicate filters (several calls AND together);
///  * `by` — ordered iteration, ascending by default, Descending() flips;
///  * `forall (p in person*)` — WithDerived() also iterates the clusters of
///    all derived classes (§3.1.1), yielding base-typed refs;
///  * iteration covers objects *inserted during the iteration* (§3.2, the
///    fixpoint-query facility) when no `by` ordering is requested: the scan
///    keeps re-checking the extent until a full pass finds nothing new;
///  * ViaIndex* — an index access path replacing the full scan (the query
///    optimization §3 anticipates).
template <typename T>
class ForAll {
 public:
  /// Post-execution counters: what the last Do/Each/Collect/Count actually
  /// did, as opposed to Describe()/Explain() which predicts the plan.
  /// Also mirrored into the engine registry (query.* — see
  /// docs/OBSERVABILITY.md).
  struct ExecStats {
    std::string access_path;      ///< scan | index-exact | index-range | oid-list
    size_t clusters = 0;          ///< clusters visited (scan path)
    size_t rounds = 0;            ///< worklist passes (scan path, §3.2)
    size_t index_candidates = 0;  ///< oids yielded by the index / oid list
    size_t rows_scanned = 0;      ///< objects deserialized and tested
    size_t rows_returned = 0;     ///< objects passing every predicate
    size_t workers = 0;           ///< pool workers used (0 = serial)

    std::string ToString() const {
      std::string out = access_path;
      if (clusters > 0) out += " clusters=" + std::to_string(clusters);
      if (rounds > 0) out += " rounds=" + std::to_string(rounds);
      if (workers > 0) out += " workers=" + std::to_string(workers);
      if (access_path != "scan") {
        out += " candidates=" + std::to_string(index_candidates);
      }
      out += " rows_scanned=" + std::to_string(rows_scanned);
      out += " rows_returned=" + std::to_string(rows_returned);
      return out;
    }
  };

  explicit ForAll(Transaction& txn) : txn_(&txn) {}

  /// Also iterate every cluster whose type derives from T (§3.1.1).
  ForAll& WithDerived() {
    with_derived_ = true;
    return *this;
  }

  /// Filter; multiple SuchThat calls conjoin.
  ForAll& SuchThat(std::function<bool(const T&)> pred) {
    preds_.push_back(std::move(pred));
    return *this;
  }

  /// Ordered iteration by a key (ascending). K needs operator<.
  template <typename K>
  ForAll& By(std::function<K(const T&)> key) {
    less_ = [key = std::move(key)](const T& a, const T& b) {
      return key(a) < key(b);
    };
    return *this;
  }

  ForAll& Descending() {
    descending_ = true;
    return *this;
  }

  /// Iterate only objects whose index key equals `user_key`.
  ForAll& ViaIndexExact(std::string index, std::string user_key) {
    index_ = std::move(index);
    index_lo_ = std::move(user_key);
    index_mode_ = IndexMode::kExact;
    return *this;
  }

  /// Iterate only objects with index key in [lo, hi); empty hi = unbounded.
  ForAll& ViaIndexRange(std::string index, std::string lo, std::string hi) {
    index_ = std::move(index);
    index_lo_ = std::move(lo);
    index_hi_ = std::move(hi);
    index_mode_ = IndexMode::kRange;
    return *this;
  }

  /// Iterate over an explicit list of objects (used by set iteration).
  ForAll& OverOids(std::vector<Oid> oids) {
    explicit_oids_ = std::move(oids);
    use_explicit_ = true;
    return *this;
  }

  /// Requests the morsel-parallel scan path with `workers` query-pool
  /// threads (0 = the whole pool). Honored only where parallelism preserves
  /// the serial semantics exactly: a snapshot transaction on the plain scan
  /// path (docs/CONCURRENCY.md "Parallel query execution"). Anything else —
  /// a lock-based transaction, an index/oid-list access path, no pool —
  /// falls back to the serial scan and counts query.parallel.fallbacks.
  /// When the pool cannot admit the whole worker set the execution fails
  /// with Busy (RunReadTransaction retries it) rather than degrading
  /// silently. SuchThat predicates run concurrently on pool threads and
  /// must not touch shared mutable state; Do/Each bodies stay serial on
  /// the coordinator.
  ForAll& Parallel(size_t workers = 0) {
    parallel_ = true;
    parallel_workers_ = workers;
    return *this;
  }

  /// True when the next execution will take the morsel-parallel scan path.
  bool WillRunParallel() const {
    QueryPool* pool = txn_->db().query_pool();
    return parallel_ && txn_->snapshot() && !use_explicit_ &&
           index_mode_ == IndexMode::kNone && pool != nullptr &&
           pool->thread_count() > 0;
  }

  /// Morsel-parallel scan core (requires WillRunParallel()): partitions
  /// every cluster's entry range into page-aligned morsels, claims them
  /// across pool workers that each join this transaction's snapshot, and
  /// folds every matching object through `step(acc, ref, obj)` into its
  /// morsel's accumulator slot. Slots come back in scan order, so merging
  /// them ascending reproduces the serial scan's visit order exactly —
  /// Collect() concatenates them, the aggregate helpers fold them. The
  /// `obj` pointer is only valid during the `step` call (it lives in the
  /// worker's transaction cache). Busy when the pool cannot admit the job.
  template <typename A>
  Result<std::vector<A>> ParallelMorsels(
      const std::function<Status(A&, Ref<T>, const T&)>& step) {
    stats_ = ExecStats{};
    stats_.access_path = "scan";
    if (!WillRunParallel()) {
      return Status::InvalidArgument(
          "ParallelMorsels requires an eligible Parallel() scan");
    }
    Database& db = txn_->db();
    QueryPool* pool = db.query_pool();
    std::vector<ClusterId> clusters;
    ODE_RETURN_IF_ERROR(ResolveClusters(&clusters));
    stats_.clusters = clusters.size();
    // Snapshot scans see a frozen extent, so one pass suffices (the serial
    // worklist re-scan exists for bodies that insert — impossible here).
    stats_.rounds = 1;
    struct Morsel {
      ClusterId cluster;
      LocalOid lo;
      LocalOid hi;  ///< exclusive
    };
    std::vector<Morsel> morsels;
    for (ClusterId cluster : clusters) {
      ODE_ASSIGN_OR_RETURN(PageId root, db.TableRootOf(cluster));
      // Read-ahead the cluster's object-table entry pages in one batched
      // pass; workers then hit warm frames instead of serializing their
      // entry walks on demand misses (prefetch is advisory — failures just
      // leave the demand path to surface real errors).
      std::vector<PageId> entry_pages;
      Status listed = db.store().ListEntryPages(root, &entry_pages);
      if (listed.ok() && !entry_pages.empty()) {
        IgnoreStatus(
            db.engine().buffer_pool().Prefetch(entry_pages.data(),
                                               entry_pages.size()),
            "parallel_scan_prefetch");
      }
      ODE_ASSIGN_OR_RETURN(uint32_t entries, db.store().NumEntries(root));
      for (uint32_t lo = 0; lo < entries; lo += kMorselEntries) {
        const uint32_t hi = std::min<uint32_t>(lo + kMorselEntries, entries);
        morsels.push_back(Morsel{cluster, lo, hi});
      }
    }
    std::vector<A> slots(morsels.size());
    size_t workers =
        parallel_workers_ == 0 ? pool->thread_count() : parallel_workers_;
    workers = std::min(workers, pool->thread_count());
    if (!morsels.empty()) {
      workers = std::min(workers, morsels.size());
      const uint64_t seq = txn_->snapshot_seq();
      std::atomic<size_t> cursor{0};
      std::vector<ExecStats> partials(workers);
      ODE_RETURN_IF_ERROR(pool->Run(workers, [&](size_t w) -> Status {
        // A fresh snapshot transaction per worker, joined at the
        // coordinator's cut: pool threads have no transaction bound, and
        // every read below resolves exactly as the coordinator's would.
        ODE_ASSIGN_OR_RETURN(std::unique_ptr<Transaction> wt,
                             db.BeginSnapshotAt(seq));
        Status ws;
        for (;;) {
          const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
          if (i >= morsels.size()) break;
          ws = ScanMorsel(*wt, morsels[i].cluster, morsels[i].lo,
                          morsels[i].hi, &slots[i], &partials[w], step);
          if (!ws.ok()) break;
        }
        Status closed = ws.ok() ? wt->Commit() : wt->Abort();
        return ws.ok() ? closed : ws;
      }));
      for (const ExecStats& p : partials) {
        stats_.rows_scanned += p.rows_scanned;
        stats_.rows_returned += p.rows_returned;
      }
      stats_.workers = workers;
      const Database::CoreMetrics& m = db.core_metrics();
      m.parallel_scans->Add();
      m.parallel_morsels->Add(morsels.size());
    }
    FlushStats();
    return slots;
  }

  /// Runs `body` for each matching object. Stops on the first error.
  Status Do(const std::function<Status(Ref<T>)>& body) {
    if (less_) {
      std::vector<Ref<T>> refs;
      ODE_RETURN_IF_ERROR(CollectInto(&refs, /*sorted=*/true));
      for (const auto& ref : refs) {
        ODE_RETURN_IF_ERROR(body(ref));
      }
      return Status::OK();
    }
    return Stream(body);
  }

  /// Convenience: body with the loaded object, no Status plumbing.
  Status Each(const std::function<void(Ref<T>, const T&)>& body) {
    return Do([&](Ref<T> ref) -> Status {
      ODE_ASSIGN_OR_RETURN(const T* obj, txn_->Read(ref));
      body(ref, *obj);
      return Status::OK();
    });
  }

  /// Materializes matching refs (ordered if By was given).
  Result<std::vector<Ref<T>>> Collect() {
    std::vector<Ref<T>> refs;
    ODE_RETURN_IF_ERROR(CollectInto(&refs, static_cast<bool>(less_)));
    return refs;
  }

  /// Human-readable description of the access path this loop would use —
  /// a tiny EXPLAIN for tests and debugging.
  std::string Describe() const {
    std::string out;
    if (use_explicit_) {
      out = "oid-list(" + std::to_string(explicit_oids_.size()) + ")";
    } else if (index_mode_ == IndexMode::kExact) {
      out = "index-exact(" + index_ + ")";
    } else if (index_mode_ == IndexMode::kRange) {
      out = "index-range(" + index_ + ")";
    } else {
      out = std::string("scan(") + TypeNameOf<T>() +
            (with_derived_ ? "*" : "") + ")";
    }
    if (!preds_.empty()) {
      out += " filter(x" + std::to_string(preds_.size()) + ")";
    }
    if (less_) {
      out += descending_ ? " order-by(desc)" : " order-by(asc)";
    }
    return out;
  }

  /// EXPLAIN spelling of Describe().
  std::string Explain() const { return Describe(); }

  /// Counters from the most recent execution (Do/Each/Collect/Count).
  const ExecStats& exec_stats() const { return stats_; }

  Result<size_t> Count() {
    size_t n = 0;
    ODE_RETURN_IF_ERROR(Stream([&](Ref<T>) {
      n++;
      return Status::OK();
    }));
    return n;
  }

 private:
  enum class IndexMode { kNone, kExact, kRange };

  /// Optimistic-validation attempts for lock-free snapshot index scans.
  static constexpr int kSnapshotScanRetries = 8;

  /// Entries per parallel-scan morsel: four 127-entry object-table pages.
  /// Page-aligned cuts mean no entry page is ever split between workers,
  /// and four pages is fine-grained enough that the shared cursor balances
  /// skewed predicates across the pool.
  static constexpr uint32_t kMorselEntries = 4 * 127;

  /// One worker's pass over entry range [lo, hi) of `cluster`, inside the
  /// worker's own joined-snapshot transaction `wt`: enumerates the heads,
  /// prefetches their record pages in one batch, then reads, filters and
  /// folds the snapshot-visible objects into `acc`.
  template <typename A>
  Status ScanMorsel(Transaction& wt, ClusterId cluster, LocalOid lo,
                    LocalOid hi, A* acc, ExecStats* partial,
                    const std::function<Status(A&, Ref<T>, const T&)>& step) {
    Database& db = txn_->db();
    std::vector<LocalOid> heads;
    LocalOid at = lo;
    while (true) {
      LocalOid local;
      bool found = false;
      ODE_RETURN_IF_ERROR(wt.NextInCluster(cluster, at, &local, &found));
      if (!found || local >= hi) break;
      heads.push_back(local);
      at = local + 1;
    }
    if (heads.empty()) return Status::OK();
    // Read-ahead the record pages the head entries point at (a snapshot may
    // resolve some objects to older versions on other pages; those fall
    // back to demand reads). Advisory, like the entry-page prefetch.
    ODE_ASSIGN_OR_RETURN(PageId root, db.TableRootOf(cluster));
    std::vector<PageId> data_pages;
    data_pages.reserve(heads.size());
    for (LocalOid local : heads) {
      ObjectTable::Entry entry;
      Status info = db.store().GetInfo(root, local, &entry);
      if (!info.ok()) continue;  // raced/odd entry: the read below decides
      if (entry.page != kInvalidPageId && !entry.overflow() &&
          !entry.tombstone()) {
        data_pages.push_back(entry.page);
      }
    }
    if (!data_pages.empty()) {
      IgnoreStatus(db.engine().buffer_pool().Prefetch(data_pages.data(),
                                                      data_pages.size()),
                   "parallel_scan_prefetch");
    }
    for (LocalOid local : heads) {
      Ref<T> ref(&db, Oid{cluster, local});
      Result<const T*> read = wt.Read(ref);
      if (!read.ok()) {
        // Same rule as the serial snapshot scan: heads not visible at the
        // cut (tombstones, post-snapshot creations) are skipped.
        if (read.status().IsNotFound()) continue;
        return read.status();
      }
      partial->rows_scanned++;
      if (!Matches(*read.value())) continue;
      partial->rows_returned++;
      ODE_RETURN_IF_ERROR(step(*acc, ref, *read.value()));
    }
    return Status::OK();
  }

  bool Matches(const T& obj) const {
    for (const auto& pred : preds_) {
      if (!pred(obj)) return false;
    }
    return true;
  }

  /// Clusters to iterate: T's own and, with WithDerived, every existing
  /// cluster of a derived type.
  Status ResolveClusters(std::vector<ClusterId>* out) const {
    Database& db = txn_->db();
    if (!with_derived_) {
      ODE_ASSIGN_OR_RETURN(ClusterId id, db.ClusterOf<T>());
      out->push_back(id);
      return Status::OK();
    }
    const auto names =
        TypeRegistry::Global().SelfAndDerived(TypeNameOf<T>());
    for (const auto& name : names) {
      const auto* entry = db.catalog().FindClusterByType(name);
      if (entry != nullptr) out->push_back(entry->id);
    }
    if (out->empty()) {
      return Status::NotFound(std::string("no cluster for type ") +
                              TypeNameOf<T>());
    }
    return Status::OK();
  }

  /// Streaming scan with worklist semantics: clusters are re-scanned past
  /// their previous high-water marks until a full round adds nothing, so
  /// objects created by `body` are visited too (§3.2).
  Status Stream(const std::function<Status(Ref<T>)>& body) {
    stats_ = ExecStats{};
    if (parallel_ && !WillRunParallel()) {
      txn_->db().core_metrics().parallel_fallbacks->Add();
    }
    if (use_explicit_ || index_mode_ != IndexMode::kNone) {
      stats_.access_path = use_explicit_               ? "oid-list"
                           : index_mode_ == IndexMode::kExact ? "index-exact"
                                                              : "index-range";
      std::vector<Oid> oids;
      ODE_RETURN_IF_ERROR(ResolveOidList(&oids));
      stats_.index_candidates = oids.size();
      for (const Oid& oid : oids) {
        Ref<T> ref(&txn_->db(), oid);
        Result<const T*> read = txn_->Read(ref);
        if (!read.ok()) {
          // Versioned index entries resolve at the snapshot's cut, so every
          // oid the scan emits should also resolve as an object read at the
          // same cut. Keep the lenient skip as defense in depth (e.g. an
          // index caught mid-backfill by a crash).
          if (txn_->snapshot() && read.status().IsNotFound()) continue;
          return read.status();
        }
        const T* obj = read.value();
        stats_.rows_scanned++;
        if (!Matches(*obj)) continue;
        stats_.rows_returned++;
        ODE_RETURN_IF_ERROR(body(ref));
      }
      FlushStats();
      return Status::OK();
    }
    stats_.access_path = "scan";
    if (WillRunParallel()) {
      // Parallel-collect the matching refs (morsel slots arrive in scan
      // order, so concatenation IS the serial visit order), then run the
      // body serially on the coordinator — bodies stay single-threaded.
      std::function<Status(std::vector<Ref<T>>&, Ref<T>, const T&)> collect =
          [](std::vector<Ref<T>>& acc, Ref<T> ref, const T&) -> Status {
        acc.push_back(ref);
        return Status::OK();
      };
      Result<std::vector<std::vector<Ref<T>>>> slots =
          ParallelMorsels<std::vector<Ref<T>>>(collect);
      if (!slots.ok()) return slots.status();
      for (const auto& slot : slots.value()) {
        for (const Ref<T>& ref : slot) {
          ODE_RETURN_IF_ERROR(body(ref));
        }
      }
      return Status::OK();
    }
    std::vector<ClusterId> clusters;
    ODE_RETURN_IF_ERROR(ResolveClusters(&clusters));
    stats_.clusters = clusters.size();
    std::vector<LocalOid> high_water(clusters.size(), 0);
    bool progressed = true;
    while (progressed) {
      progressed = false;
      stats_.rounds++;
      for (size_t i = 0; i < clusters.size(); i++) {
        while (true) {
          LocalOid local;
          bool found = false;
          ODE_RETURN_IF_ERROR(
              txn_->NextInCluster(clusters[i], high_water[i], &local, &found));
          if (!found) break;
          high_water[i] = local + 1;
          progressed = true;
          Ref<T> ref(&txn_->db(), Oid{clusters[i], local});
          Result<const T*> read = txn_->Read(ref);
          if (!read.ok()) {
            // Snapshot scans enumerate heads including tombstones (so the
            // walk can reach versions still visible at the snapshot); a head
            // whose newest visible state is "not yet created" or "deleted"
            // resolves NotFound — not a match, keep scanning.
            if (txn_->snapshot() && read.status().IsNotFound()) continue;
            return read.status();
          }
          const T* obj = read.value();
          stats_.rows_scanned++;
          if (!Matches(*obj)) continue;
          stats_.rows_returned++;
          ODE_RETURN_IF_ERROR(body(ref));
        }
      }
    }
    FlushStats();
    return Status::OK();
  }

  /// Mirrors the finished execution's counters into the engine registry.
  void FlushStats() {
    const Database::CoreMetrics& m = txn_->db().core_metrics();
    if (stats_.access_path == "scan") {
      m.scans->Add();
    } else if (stats_.access_path == "oid-list") {
      m.oid_list_scans->Add();
    } else {
      m.index_scans->Add();
    }
    m.rows_scanned->Add(stats_.rows_scanned);
    m.rows_returned->Add(stats_.rows_returned);
  }

  Status ResolveOidList(std::vector<Oid>* oids) const {
    if (use_explicit_) {
      *oids = explicit_oids_;
      return Status::OK();
    }
    IndexManager& indexes = txn_->db().indexes();
    if (txn_->snapshot()) {
      // Lock-free snapshot scan over VERSIONED index entries: the scan
      // filters each (key, oid) group through "newest entry with
      // commit_seq <= snapshot_seq", so the emitted oid set is the key set
      // as of the snapshot's cut regardless of concurrent key mutations —
      // the old current-key-set anomaly is gone, and GC cannot remove an
      // entry this snapshot resolves (the watermark is <= our sequence).
      //
      // The SyncedSeq validation loop remains purely STRUCTURAL: a publish
      // that splits pages mid-traversal can mix old and new page images
      // (pinned leaves vs freshly-read siblings) and tear the walk itself.
      // Equal sequence before/after proves the tree did not move; a retry
      // re-reads the same versioned entries and converges to the identical
      // snapshot-consistent answer. Exhaustion surfaces Busy for
      // RunReadTransaction under sustained commit pressure; never locks.
      const uint64_t as_of = txn_->snapshot_seq();
      for (int attempt = 0; attempt < kSnapshotScanRetries; ++attempt) {
        const uint64_t before = txn_->db().engine().SyncedSeq();
        oids->clear();
        Status s =
            index_mode_ == IndexMode::kExact
                ? indexes.ScanExact(index_, index_lo_, oids, as_of)
                : indexes.ScanRange(index_, index_lo_, index_hi_, oids, as_of);
        if (s.ok() && txn_->db().engine().SyncedSeq() == before) {
          return Status::OK();
        }
      }
      return Status::Busy("snapshot index scan kept racing commits on " +
                          index_);
    }
    // Shared-lock the index before reading its B-tree, so concurrent
    // maintenance (which takes X per index) cannot mutate the tree under
    // the scan.
    ODE_RETURN_IF_ERROR(txn_->LockIndexShared(index_));
    if (index_mode_ == IndexMode::kExact) {
      return indexes.ScanExact(index_, index_lo_, oids);
    }
    return indexes.ScanRange(index_, index_lo_, index_hi_, oids);
  }

  Status CollectInto(std::vector<Ref<T>>* refs, bool sorted) {
    ODE_RETURN_IF_ERROR(Stream([&](Ref<T> ref) {
      refs->push_back(ref);
      return Status::OK();
    }));
    if (sorted && less_) {
      // Objects are in the transaction cache; load pointers for comparison.
      // Pin the cache: with max_cached_objects set, an eviction mid-loop
      // would invalidate earlier pointers in `keyed`.
      Transaction::CachePin pin(*txn_);
      std::vector<std::pair<Ref<T>, const T*>> keyed;
      keyed.reserve(refs->size());
      for (const auto& ref : *refs) {
        ODE_ASSIGN_OR_RETURN(const T* obj, txn_->Read(ref));
        keyed.emplace_back(ref, obj);
      }
      std::stable_sort(keyed.begin(), keyed.end(),
                       [this](const auto& a, const auto& b) {
                         return less_(*a.second, *b.second);
                       });
      if (descending_) std::reverse(keyed.begin(), keyed.end());
      refs->clear();
      for (const auto& [ref, obj] : keyed) refs->push_back(ref);
    }
    return Status::OK();
  }

  // A ForAll is a stack-lived builder created and consumed inside one
  // transaction body; the pointer never crosses Commit().
  Transaction* txn_;  // ode-lint: allow(txn-ptr-member)
  bool with_derived_ = false;
  bool descending_ = false;
  bool parallel_ = false;         ///< Parallel() was requested.
  size_t parallel_workers_ = 0;   ///< Requested width (0 = whole pool).
  std::vector<std::function<bool(const T&)>> preds_;
  std::function<bool(const T&, const T&)> less_;
  IndexMode index_mode_ = IndexMode::kNone;
  std::string index_, index_lo_, index_hi_;
  bool use_explicit_ = false;
  std::vector<Oid> explicit_oids_;
  ExecStats stats_;
};

}  // namespace ode

#endif  // ODE_CORE_FORALL_H_
