#include "core/set.h"

namespace ode {

void EnsureSetTypeRegistered() {
  static const bool registered = [] {
    internal_schema::TypeRegistrar<OSetData> registrar("ode::OSetData");
    (void)registrar;
    return true;
  }();
  (void)registered;
}

}  // namespace ode
