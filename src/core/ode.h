#ifndef ODE_CORE_ODE_H_
#define ODE_CORE_ODE_H_

/// \file
/// Umbrella header for the ODE object database (Agrawal & Gehani, SIGMOD
/// 1989). Applications include this one header; it pulls in the Database,
/// Transaction, Ref, ForAll, OSet/VSet and versioning APIs and completes the
/// template definitions that span them.

#include <cstdlib>

#include "core/database.h"
#include "core/forall.h"
#include "core/ref.h"
#include "core/set.h"
#include "core/transaction.h"
#include "core/version.h"
#include "query/index_key.h"
#include "util/logging.h"

namespace ode {

// --- Late template definitions ---------------------------------------------

template <typename T>
Status Database::CreateCluster() {
  return InTransaction(
      [&](Transaction& txn) { return txn.CreateCluster<T>(); });
}

template <typename T>
Status Database::CreateIndex(const std::string& name,
                             std::function<std::string(const T&)> key_fn) {
  IndexManager::Extractor extractor =
      [key_fn = std::move(key_fn)](const void* obj) {
        return key_fn(*static_cast<const T*>(obj));
      };
  return InTransaction([&](Transaction& txn) {
    return txn.CreateIndexByName(name, TypeNameOf<T>(), extractor);
  });
}

/// `persistent T*` dereference: reads through the active transaction.
/// Dereferencing with no open transaction, or a dangling/unreadable ref,
/// terminates the process — it is the moral equivalent of dereferencing a
/// bad pointer. Use Transaction::Read for checked access.
template <typename T>
const T* Ref<T>::operator->() const {
  if (db_ == nullptr) {
    ODE_LOG(kError) << "deref of unbound persistent ref";
    abort();
  }
  Transaction* txn = db_->active_txn();
  if (txn == nullptr) {
    ODE_LOG(kError) << "deref of persistent ref outside a transaction";
    abort();
  }
  Result<const T*> result = txn->Read(*this);
  if (!result.ok()) {
    ODE_LOG(kError) << "deref of persistent ref " << oid_.ToString()
                    << " failed: " << result.status().ToString();
    abort();
  }
  return result.value();
}

/// Free-function form of the `is persistent T*` predicate (§3.1.2).
template <typename To, typename From>
Result<Ref<To>> RefCast(Transaction& txn, const Ref<From>& ref) {
  return txn.template RefCast<To>(ref);
}

}  // namespace ode

#endif  // ODE_CORE_ODE_H_
