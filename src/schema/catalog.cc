#include "schema/catalog.h"

#include "storage/overflow.h"

namespace ode {

const CatalogData::ClusterEntry* CatalogData::FindCluster(ClusterId id) const {
  for (const auto& c : clusters) {
    if (c.id == id) return &c;
  }
  return nullptr;
}

CatalogData::ClusterEntry* CatalogData::FindCluster(ClusterId id) {
  for (auto& c : clusters) {
    if (c.id == id) return &c;
  }
  return nullptr;
}

const CatalogData::ClusterEntry* CatalogData::FindClusterByType(
    const std::string& type_name) const {
  for (const auto& c : clusters) {
    if (c.type_name == type_name) return &c;
  }
  return nullptr;
}

const CatalogData::TypeEntry* CatalogData::FindType(
    const std::string& name) const {
  for (const auto& t : types) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

const CatalogData::TypeEntry* CatalogData::FindTypeByCode(
    uint32_t code) const {
  for (const auto& t : types) {
    if (t.code == code) return &t;
  }
  return nullptr;
}

const CatalogData::IndexEntry* CatalogData::FindIndex(
    const std::string& name) const {
  for (const auto& i : indexes) {
    if (i.name == name) return &i;
  }
  return nullptr;
}

CatalogData::IndexEntry* CatalogData::FindIndex(const std::string& name) {
  for (auto& i : indexes) {
    if (i.name == name) return &i;
  }
  return nullptr;
}

Status Catalog::Load(StorageEngine* engine, CatalogData* data) {
  *data = CatalogData();
  ODE_ASSIGN_OR_RETURN(
      uint32_t root, engine->ReadSuperU32(SuperblockLayout::kCatalogRootOffset));
  if (root == kInvalidPageId) return Status::OK();  // Fresh database.
  std::string blob;
  ODE_RETURN_IF_ERROR(overflow::ReadChain(engine, root, &blob));
  ReadArchive ar(Slice(blob), /*db=*/nullptr);
  ar(*data);
  if (!ar.ok()) return Status::Corruption("unreadable catalog");
  return Status::OK();
}

Status Catalog::Save(StorageEngine* engine, CatalogData& data) {
  ODE_ASSIGN_OR_RETURN(
      uint32_t old_root,
      engine->ReadSuperU32(SuperblockLayout::kCatalogRootOffset));
  std::string blob;
  WriteArchive ar(&blob);
  ar(data);
  PageId new_root;
  ODE_RETURN_IF_ERROR(overflow::WriteChain(engine, Slice(blob), &new_root));
  ODE_RETURN_IF_ERROR(
      engine->WriteSuperU32(SuperblockLayout::kCatalogRootOffset, new_root));
  if (old_root != kInvalidPageId) {
    ODE_RETURN_IF_ERROR(overflow::FreeChain(engine, old_root));
  }
  return Status::OK();
}

}  // namespace ode
