#ifndef ODE_SCHEMA_TYPE_REGISTRY_H_
#define ODE_SCHEMA_TYPE_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "serial/archive.h"
#include "util/slice.h"
#include "util/status.h"

namespace ode {

/// Compile-time name tag for registered persistent classes. Left undefined
/// for unregistered types so misuse fails at compile time. Specialized by
/// ODE_REGISTER_CLASS.
template <typename T>
struct TypeTag;

/// The registered type name for T.
template <typename T>
const char* TypeNameOf() {
  return TypeTag<T>::kName;
}

/// Runtime metadata for one registered persistent class: construction,
/// serialization thunks and the (multiple) inheritance links that make
/// cluster-hierarchy queries and `is persistent T*` checks work (paper §2,
/// §3.1.1).
struct TypeInfo {
  /// Upcast edge to a direct base class. The thunk adjusts the pointer,
  /// which matters under multiple inheritance.
  struct BaseLink {
    std::string base_name;
    void* (*upcast)(void*);
  };

  std::string name;
  size_t size = 0;
  void* (*construct)() = nullptr;
  void (*destroy)(void*) = nullptr;
  void (*serialize)(void* obj, std::string* out) = nullptr;
  Status (*deserialize)(Slice data, Database* db, void* obj) = nullptr;
  std::vector<BaseLink> bases;
};

/// Process-wide registry of persistent classes, populated by
/// ODE_REGISTER_CLASS static initializers.
class TypeRegistry {
 public:
  static TypeRegistry& Global();

  /// Registers a class. Re-registration under the same name is ignored
  /// (e.g. a registration macro expanded in several translation units).
  void Register(TypeInfo info);

  /// Looks up by registered name; nullptr when unknown.
  const TypeInfo* Find(const std::string& name) const;

  /// True when `derived` is `base` or (transitively) inherits from it.
  bool IsDerivedFrom(const std::string& derived, const std::string& base) const;

  /// Adjusts a pointer of dynamic type `from` to its base subobject of type
  /// `to`. Returns nullptr when `to` is not a (transitive) base.
  void* Upcast(void* obj, const std::string& from, const std::string& to) const;

  /// All registered names that are `base` or derive from it.
  std::vector<std::string> SelfAndDerived(const std::string& base) const;

  std::vector<std::string> AllNames() const;

 private:
  std::map<std::string, TypeInfo> types_;
};

namespace internal_schema {

/// Static-initializer helper behind ODE_REGISTER_CLASS.
template <typename T, typename... Bases>
struct TypeRegistrar {
  explicit TypeRegistrar(const char* name) {
    TypeInfo info;
    info.name = name;
    info.size = sizeof(T);
    info.construct = []() -> void* { return SerialAccess::Construct<T>(); };
    info.destroy = &SerialAccess::Destroy<T>;
    info.serialize = [](void* obj, std::string* out) {
      WriteArchive ar(out);
      ar(*static_cast<T*>(obj));
    };
    info.deserialize = [](Slice data, Database* db, void* obj) -> Status {
      ReadArchive ar(data, db);
      ar(*static_cast<T*>(obj));
      if (!ar.ok()) {
        return Status::Corruption(std::string("truncated record for type ") +
                                  TypeNameOf<T>());
      }
      return Status::OK();
    };
    (info.bases.push_back(TypeInfo::BaseLink{
         TypeNameOf<Bases>(),
         [](void* p) -> void* {
           return static_cast<Bases*>(static_cast<T*>(p));
         }}),
     ...);
    TypeRegistry::Global().Register(std::move(info));
  }
};

}  // namespace internal_schema
}  // namespace ode

/// Registers a persistent class with ODE. Use at global namespace scope in
/// exactly one translation unit per class, after the class definition:
///
///   ODE_REGISTER_CLASS(Person);
///   ODE_REGISTER_CLASS(Student, Person);          // Student : public Person
///   ODE_REGISTER_CLASS(TA, Student, Employee);    // multiple inheritance
///
/// The class needs a default constructor and an OdeFields member (both may
/// be private with `friend struct ode::SerialAccess;`).
#define ODE_REGISTER_CLASS(T, ...)                                       \
  template <>                                                            \
  struct ode::TypeTag<T> {                                               \
    static constexpr const char* kName = #T;                             \
  };                                                                     \
  static const ::ode::internal_schema::TypeRegistrar<T __VA_OPT__(, )    \
                                                         __VA_ARGS__>    \
      ODE_CONCAT_(ode_type_registrar_, __COUNTER__)(#T)

#endif  // ODE_SCHEMA_TYPE_REGISTRY_H_
