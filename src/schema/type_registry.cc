#include "schema/type_registry.h"

#include <deque>

#include "util/logging.h"

namespace ode {

TypeRegistry& TypeRegistry::Global() {
  static TypeRegistry* registry = new TypeRegistry();
  return *registry;
}

void TypeRegistry::Register(TypeInfo info) {
  auto it = types_.find(info.name);
  if (it != types_.end()) {
    if (it->second.size != info.size) {
      ODE_LOG(kWarn) << "conflicting re-registration of type " << info.name;
    }
    return;
  }
  types_.emplace(info.name, std::move(info));
}

const TypeInfo* TypeRegistry::Find(const std::string& name) const {
  auto it = types_.find(name);
  return it == types_.end() ? nullptr : &it->second;
}

bool TypeRegistry::IsDerivedFrom(const std::string& derived,
                                 const std::string& base) const {
  if (derived == base) return true;
  const TypeInfo* info = Find(derived);
  if (info == nullptr) return false;
  for (const auto& link : info->bases) {
    if (IsDerivedFrom(link.base_name, base)) return true;
  }
  return false;
}

void* TypeRegistry::Upcast(void* obj, const std::string& from,
                           const std::string& to) const {
  if (from == to) return obj;
  const TypeInfo* info = Find(from);
  if (info == nullptr) return nullptr;
  for (const auto& link : info->bases) {
    void* base_ptr = link.upcast(obj);
    if (void* result = Upcast(base_ptr, link.base_name, to)) {
      return result;
    }
  }
  return nullptr;
}

std::vector<std::string> TypeRegistry::SelfAndDerived(
    const std::string& base) const {
  std::vector<std::string> out;
  for (const auto& [name, info] : types_) {
    if (IsDerivedFrom(name, base)) out.push_back(name);
  }
  return out;
}

std::vector<std::string> TypeRegistry::AllNames() const {
  std::vector<std::string> out;
  out.reserve(types_.size());
  for (const auto& [name, info] : types_) out.push_back(name);
  return out;
}

}  // namespace ode
