#ifndef ODE_SCHEMA_CATALOG_H_
#define ODE_SCHEMA_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "objstore/object_id.h"
#include "serial/archive.h"
#include "storage/engine.h"
#include "util/status.h"

namespace ode {

/// The database's persistent schema directory. Clusters (type extents,
/// paper §2.5), stable type codes and secondary indexes live here. The
/// catalog is serialized as one blob in an overflow-page chain whose first
/// page id is recorded in the superblock; saving rewrites the chain inside
/// the enclosing transaction, so schema changes commit or roll back with
/// everything else.
struct CatalogData {
  struct TypeEntry {
    std::string name;
    uint32_t code = 0;

    template <typename AR>
    void OdeFields(AR& ar) {
      ar(name, code);
    }
  };

  struct ClusterEntry {
    ClusterId id = kInvalidClusterId;
    std::string type_name;
    PageId table_root = kInvalidPageId;

    template <typename AR>
    void OdeFields(AR& ar) {
      ar(id, type_name, table_root);
    }
  };

  struct IndexEntry {
    std::string name;
    ClusterId cluster = kInvalidClusterId;
    /// The index's root-POINTER page (PageType::kIndexRoot): a one-level
    /// indirection holding the current B-tree root id. Root splits rewrite
    /// the pointer page as an ordinary shadowed page write, so index
    /// maintenance never touches the catalog blob and needs no schema lock.
    PageId root_page = kInvalidPageId;
    /// Stable id, allocated from next_index_id; keys the per-index lock
    /// resource (concur::IndexResource).
    uint64_t id = 0;

    template <typename AR>
    void OdeFields(AR& ar) {
      ar(name, cluster, root_page, id);
    }
  };

  /// Persisted trigger activation (paper §6): which trigger definition is
  /// armed on which object, with its arguments.
  struct TriggerActivation {
    uint64_t trigger_id = 0;
    ClusterId cluster = kInvalidClusterId;
    LocalOid local = kInvalidLocalOid;
    std::string trigger_name;  ///< Class-level trigger definition name.
    bool perpetual = false;
    std::vector<double> params;

    template <typename AR>
    void OdeFields(AR& ar) {
      ar(trigger_id, cluster, local, trigger_name, perpetual, params);
    }
  };

  uint32_t next_cluster_id = 1;
  uint32_t next_type_code = 1;
  uint64_t next_index_id = 1;
  std::vector<TypeEntry> types;
  std::vector<ClusterEntry> clusters;
  std::vector<IndexEntry> indexes;
  std::vector<TriggerActivation> triggers;

  template <typename AR>
  void OdeFields(AR& ar) {
    ar(next_cluster_id, next_type_code, next_index_id, types, clusters,
       indexes, triggers);
  }

  // Convenience lookups (linear; catalogs are small).
  const ClusterEntry* FindCluster(ClusterId id) const;
  ClusterEntry* FindCluster(ClusterId id);
  const ClusterEntry* FindClusterByType(const std::string& type_name) const;
  const TypeEntry* FindType(const std::string& name) const;
  const TypeEntry* FindTypeByCode(uint32_t code) const;
  const IndexEntry* FindIndex(const std::string& name) const;
  IndexEntry* FindIndex(const std::string& name);
};

/// Loads/saves the catalog blob.
class Catalog {
 public:
  /// Reads the catalog from the chain referenced by the superblock. A fresh
  /// database (no chain yet) yields a default-constructed CatalogData.
  static Status Load(StorageEngine* engine, CatalogData* data);

  /// Rewrites the catalog chain (must be inside the active transaction).
  static Status Save(StorageEngine* engine, CatalogData& data);
};

}  // namespace ode

#endif  // ODE_SCHEMA_CATALOG_H_
